// Journaled file server (DESIGN.md §19): buffer-cache behaviour, group
// commit into the write-ahead log, boot-time replay of committed batches,
// and discard of torn appends. The cache/WAL units are driven through
// ProgramHarness; the end-to-end determinism check runs the churner
// workload through the full fault campaign at 1 and 2 machine threads.

#include <gtest/gtest.h>

#include "src/fault/campaign.h"
#include "src/servers/block_cache.h"
#include "src/servers/file_server.h"
#include "tests/program_harness.h"

namespace auragen {
namespace {

const Gpid kUser = Gpid::Make(1, 42);
constexpr uint64_t kChan = 0x1000000000007ull;

// ------------------------------------------------------------- block cache

TEST(BlockCache, HitsAndMissesAreAccounted) {
  BlockCache cache(4);
  EXPECT_EQ(cache.Get(10), nullptr);
  cache.Put(10, Bytes(8, 0xAA), /*dirty=*/false);
  const Bytes* hit = cache.Get(10);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ((*hit)[0], 0xAA);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(BlockCache, EvictsLeastRecentlyUsedCleanBlock) {
  BlockCache cache(3);
  cache.Put(1, Bytes(4, 1), false);
  cache.Put(2, Bytes(4, 2), false);
  cache.Put(3, Bytes(4, 3), false);
  // Touch 1 so 2 is now the coldest.
  EXPECT_NE(cache.Get(1), nullptr);
  cache.Put(4, Bytes(4, 4), false);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.Get(2), nullptr);  // the cold block went
  EXPECT_NE(cache.Get(1), nullptr);
  EXPECT_NE(cache.Get(3), nullptr);
  EXPECT_NE(cache.Get(4), nullptr);
}

TEST(BlockCache, DirtyBlocksArePinnedAgainstEviction) {
  BlockCache cache(3);
  cache.Put(1, Bytes(4, 1), /*dirty=*/true);   // coldest, but pinned
  cache.Put(2, Bytes(4, 2), /*dirty=*/false);
  cache.Put(3, Bytes(4, 3), /*dirty=*/true);
  cache.Put(4, Bytes(4, 4), false);
  // The only clean block (2) was evicted; both dirty blocks survive.
  EXPECT_EQ(cache.Get(2), nullptr);
  EXPECT_NE(cache.Get(1), nullptr);
  EXPECT_NE(cache.Get(3), nullptr);
  EXPECT_EQ(cache.dirty_count(), 2u);
  // MarkClean unpins: block 1 becomes evictable again.
  cache.MarkClean(1);
  EXPECT_EQ(cache.dirty_count(), 1u);
}

TEST(BlockCache, DirtyBlocksEnumerateInAscendingBlockOrder) {
  BlockCache cache(8);
  cache.Put(9, Bytes(4, 9), true);
  cache.Put(3, Bytes(4, 3), true);
  cache.Put(7, Bytes(4, 7), false);
  cache.Put(5, Bytes(4, 5), true);
  DiskWriteBatch batch = cache.DirtyBlocks();
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].first, 3u);
  EXPECT_EQ(batch[1].first, 5u);
  EXPECT_EQ(batch[2].first, 9u);
}

TEST(BlockCacheDeathTest, PanicsWhenEveryBlockIsPinnedDirty) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  BlockCache cache(2);
  cache.Put(1, Bytes(4, 1), true);
  cache.Put(2, Bytes(4, 2), true);
  EXPECT_DEATH(cache.Put(3, Bytes(4, 3), true), "pinned dirty");
}

// ---------------------------------------------------- journal via harness

Bytes OpenMsg(const std::string& name, uint64_t cookie = 1) {
  OpenRequest open;
  open.cookie = cookie;
  open.name = name;
  open.opener = kUser;
  open.opener_cluster = 1;
  open.opener_backup = 0;
  return open.Encode();
}

struct JournalFixture {
  FileServerOptions options;
  FileServerProgram fs;
  ProgramHarness h{fs};

  explicit JournalFixture(uint32_t sync_every_ops = 64)
      : options([&] {
          FileServerOptions o;
          o.sync_every_ops = sync_every_ops;
          return o;
        }()),
        fs(options) {
    h.Drain();  // boot: whoami + format commit
  }

  uint64_t Open(const std::string& name) {
    size_t before = h.sent.size();
    h.Push(kChan, kUser, kBindFsChannel, MsgKind::kUser, OpenMsg(name));
    h.Deliver();
    AURAGEN_CHECK(h.sent.size() == before + 1);
    OpenReplyBody reply = OpenReplyBody::Decode(h.sent.back().payload);
    AURAGEN_CHECK(reply.status == 0);
    return reply.channel.value;
  }

  void Write(uint64_t chan, const Bytes& data) {
    h.Push(chan, kUser, 0, MsgKind::kUser, EncodeTaggedBlob(ReqTag::kFileWrite, data));
    h.Deliver();
  }

  Bytes Read(uint64_t chan, uint64_t max) {
    size_t before = h.sent.size();
    h.Push(chan, kUser, 0, MsgKind::kUser, EncodeTaggedU64(ReqTag::kFileRead, max));
    h.Deliver();
    AURAGEN_CHECK(h.sent.size() == before + 1);
    ByteReader r(h.sent.back().payload);
    AURAGEN_CHECK(static_cast<ReqTag>(r.U8()) == ReqTag::kData);
    return r.Blob();
  }
};

TEST(FileServerJournal, CachedReadsTouchNoDisk) {
  JournalFixture f;
  uint64_t chan = f.Open("hot");
  f.Write(chan, Bytes(700, 0x42));  // spans two blocks, both now cached
  uint64_t rchan = f.Open("hot");
  uint64_t before = f.h.disk_reads;
  Bytes back = f.Read(rchan, 1024);
  EXPECT_EQ(back.size(), 700u);
  EXPECT_EQ(f.h.disk_reads, before);  // served entirely from the cache
  EXPECT_GE(f.fs.cache().hits(), 2u);
}

TEST(FileServerJournal, ColdReadMissesOnceThenHits) {
  JournalFixture f(2);  // commit promptly so the data reaches the disk
  uint64_t chan = f.Open("cold");
  f.Write(chan, Bytes(700, 0x17));
  ASSERT_GE(f.fs.commits(), 2u);  // format + data commit

  // A fresh instance on the same dual-ported disk boots with a cold cache.
  FileServerProgram recovered(f.options);
  {
    ByteReader r(f.h.server_syncs.back());
    ServerSyncPrefix::Deserialize(r);
    recovered.ApplyServerSync(r);
  }
  ProgramHarness h2(recovered);
  h2.disk = f.h.disk;
  h2.Drain();

  // First read faults the blocks in; the second is free.
  auto read = [&](uint64_t rc, uint64_t max) {
    size_t before = h2.sent.size();
    h2.Push(rc, kUser, 0, MsgKind::kUser, EncodeTaggedU64(ReqTag::kFileRead, max));
    h2.Deliver();
    AURAGEN_CHECK(h2.sent.size() == before + 1);
    ByteReader r(h2.sent.back().payload);
    AURAGEN_CHECK(static_cast<ReqTag>(r.U8()) == ReqTag::kData);
    return r.Blob();
  };
  size_t before_open = h2.sent.size();
  h2.Push(kChan + 9, kUser, kBindFsChannel, MsgKind::kUser, OpenMsg("cold", 2));
  h2.Deliver();
  AURAGEN_CHECK(h2.sent.size() == before_open + 1);
  uint64_t rc = OpenReplyBody::Decode(h2.sent.back().payload).channel.value;

  uint64_t cold_reads = h2.disk_reads;
  Bytes first = read(rc, 1024);
  EXPECT_EQ(first.size(), 700u);
  EXPECT_GT(h2.disk_reads, cold_reads);  // miss path hit the device

  size_t before2 = h2.sent.size();
  h2.Push(kChan + 10, kUser, kBindFsChannel, MsgKind::kUser, OpenMsg("cold", 3));
  h2.Deliver();
  AURAGEN_CHECK(h2.sent.size() == before2 + 1);
  uint64_t rc2 = OpenReplyBody::Decode(h2.sent.back().payload).channel.value;
  uint64_t warm_reads = h2.disk_reads;
  Bytes second = read(rc2, 1024);
  EXPECT_EQ(second, first);
  EXPECT_EQ(h2.disk_reads, warm_reads);  // now cached
}

TEST(FileServerJournal, GroupCommitBatchesAllDirtyBlocksIntoOneTransaction) {
  JournalFixture f(16);
  uint64_t chan = f.Open("batched");
  // Dirty several distinct data blocks without tripping the op trigger.
  for (int i = 0; i < 6; ++i) {
    f.Write(chan, Bytes(kBlockSize, static_cast<uint8_t>('a' + i)));
  }
  uint64_t batches_before = f.h.disk_write_batches;
  uint64_t commits_before = f.fs.commits();
  // Land exactly on the trigger: open + 6 writes + 9 tiny writes = 16 ops,
  // so the commit fires on the last op and nothing re-dirties afterwards.
  for (int i = 0; i < 9; ++i) {
    f.Write(chan, Bytes(4, 0x55));
  }
  ASSERT_EQ(f.fs.commits(), commits_before + 1);
  // One commit = exactly two vectored transactions (log append + home
  // migration), however many blocks were dirty.
  EXPECT_EQ(f.h.disk_write_batches, batches_before + 2);
  EXPECT_EQ(f.fs.cache().dirty_count(), 0u);  // checkpoint cleaned the cache
}

// Builds the crash-just-after-commit-record disk: pre-commit home blocks,
// post-commit log region and commit-record slots. §7.9's recovery contract
// says boot must replay the batch and reproduce the post-commit state.
TEST(FileServerJournal, BootReplaysCommittedButUnmigratedBatch) {
  JournalFixture f(4);
  uint64_t chan = f.Open("replayed");
  f.Write(chan, Bytes(300, 0x77));
  ASSERT_GE(f.fs.commits(), 1u);
  std::map<BlockNum, Bytes> pre = f.h.disk;  // homes as of the last checkpoint
  uint64_t commits_before = f.fs.commits();
  f.Write(chan, Bytes(300, 0x99));  // offset 300: spans into block 2 of the file
  f.Write(chan, Bytes(4, 0x11));
  ASSERT_GT(f.fs.commits(), commits_before);

  // Crash window: the log and the commit record reached the disk, the home
  // migration did not.
  std::map<BlockNum, Bytes> torn = pre;
  torn[FileServerProgram::kCrSlot0] = f.h.disk[FileServerProgram::kCrSlot0];
  torn[FileServerProgram::kCrSlot1] = f.h.disk[FileServerProgram::kCrSlot1];
  for (uint32_t i = 0; i < f.options.log_blocks; ++i) {
    BlockNum b = FileServerProgram::kLogDataStart + i;
    auto it = f.h.disk.find(b);
    if (it != f.h.disk.end()) {
      torn[b] = it->second;
    }
  }

  FileServerProgram recovered(f.options);
  {
    ByteReader r(f.h.server_syncs.back());
    ServerSyncPrefix::Deserialize(r);
    recovered.ApplyServerSync(r);
  }
  ProgramHarness h2(recovered);
  h2.disk = torn;
  h2.Drain();
  EXPECT_EQ(recovered.FileSize("replayed"), 604u);
  EXPECT_EQ(recovered.log_seq(), f.fs.log_seq());

  // The replayed homes now match the fully migrated disk, byte for byte.
  for (const auto& [block, image] : f.h.disk) {
    auto it = h2.disk.find(block);
    ASSERT_TRUE(it != h2.disk.end()) << "block " << block << " missing";
    Bytes want = image;
    Bytes got = it->second;
    want.resize(kBlockSize, 0);
    got.resize(kBlockSize, 0);
    EXPECT_EQ(got, want) << "block " << block;
  }
}

// A torn append — log data written, commit record not — must be invisible:
// boot comes up at the last checkpoint and the next commit overwrites it.
TEST(FileServerJournal, BootDiscardsTornAppend) {
  JournalFixture f(2);  // open + write land exactly on the commit trigger
  uint64_t chan = f.Open("stable");
  f.Write(chan, Bytes(200, 0x33));
  ASSERT_GE(f.fs.commits(), 2u);  // format + the data commit
  uint64_t size_at_checkpoint = f.fs.FileSize("stable");
  uint64_t seq_at_checkpoint = f.fs.log_seq();

  // Scribble a torn append into the log region: garbage data blocks, and a
  // corrupt (wrong-magic) record in the slot the next commit would use.
  std::map<BlockNum, Bytes> torn = f.h.disk;
  for (uint32_t i = 0; i < 8; ++i) {
    torn[FileServerProgram::kLogDataStart + i] = Bytes(kBlockSize, 0xDE);
  }
  // The torn record lands in the slot the next commit would use (seq 3 →
  // slot 1; seq 2's valid record sits in slot 0 and must win).
  Bytes bogus(24, 0xDE);  // right length, wrong magic
  torn[FileServerProgram::kCrSlot1] = bogus;

  FileServerProgram recovered(f.options);
  {
    ByteReader r(f.h.server_syncs.back());
    ServerSyncPrefix::Deserialize(r);
    recovered.ApplyServerSync(r);
  }
  ProgramHarness h2(recovered);
  h2.disk = torn;
  h2.Drain();
  EXPECT_EQ(recovered.FileSize("stable"), size_at_checkpoint);
  EXPECT_EQ(recovered.log_seq(), seq_at_checkpoint);

  // And the recovered instance keeps working: reads serve the checkpointed
  // bytes untouched by the garbage.
  size_t before = h2.sent.size();
  h2.Push(kChan + 4, kUser, kBindFsChannel, MsgKind::kUser, OpenMsg("stable", 7));
  h2.Deliver();
  AURAGEN_CHECK(h2.sent.size() == before + 1);
  uint64_t rc = OpenReplyBody::Decode(h2.sent.back().payload).channel.value;
  size_t before2 = h2.sent.size();
  h2.Push(rc, kUser, 0, MsgKind::kUser, EncodeTaggedU64(ReqTag::kFileRead, 1024));
  h2.Deliver();
  AURAGEN_CHECK(h2.sent.size() == before2 + 1);
  ByteReader r2(h2.sent.back().payload);
  AURAGEN_CHECK(static_cast<ReqTag>(r2.U8()) == ReqTag::kData);
  Bytes back = r2.Blob();
  ASSERT_EQ(back.size(), 200u);
  EXPECT_EQ(back[0], 0x33);
  EXPECT_EQ(back[199], 0x33);
}

TEST(FileServerJournal, WriteThenRebootMatchesOriginal) {
  JournalFixture f(3);  // open + both writes commit as one batch
  uint64_t chan = f.Open("persist");
  Bytes payload;
  for (int i = 0; i < 1500; ++i) {
    payload.push_back(static_cast<uint8_t>(i * 7));
  }
  f.Write(chan, payload);
  f.Write(chan, Bytes(64, 0xEE));
  ASSERT_GE(f.fs.commits(), 2u);

  FileServerProgram rebooted(f.options);
  {
    ByteReader r(f.h.server_syncs.back());
    ServerSyncPrefix::Deserialize(r);
    rebooted.ApplyServerSync(r);
  }
  ProgramHarness h2(rebooted);
  h2.disk = f.h.disk;
  h2.Drain();
  EXPECT_EQ(rebooted.FileSize("persist"), 1564u);

  size_t before = h2.sent.size();
  h2.Push(kChan + 5, kUser, kBindFsChannel, MsgKind::kUser, OpenMsg("persist", 8));
  h2.Deliver();
  AURAGEN_CHECK(h2.sent.size() == before + 1);
  uint64_t rc = OpenReplyBody::Decode(h2.sent.back().payload).channel.value;
  size_t before2 = h2.sent.size();
  h2.Push(rc, kUser, 0, MsgKind::kUser, EncodeTaggedU64(ReqTag::kFileRead, 4096));
  h2.Deliver();
  AURAGEN_CHECK(h2.sent.size() == before2 + 1);
  ByteReader r2(h2.sent.back().payload);
  AURAGEN_CHECK(static_cast<ReqTag>(r2.U8()) == ReqTag::kData);
  Bytes back = r2.Blob();
  Bytes want = payload;
  want.insert(want.end(), 64, 0xEE);
  EXPECT_EQ(back, want);
}

// ------------------------------------------------- machine-thread digests

// The full churner workload under a seeded fault plan must produce
// bit-identical trace digests at 1 and 2 shard-worker threads.
TEST(FileServerJournal, MachineThreadCountDoesNotChangeDigests) {
  for (uint64_t seed : {3ull, 11ull}) {
    CampaignOptions seq;
    seq.file_workload = true;
    seq.check_determinism = false;
    seq.machine_threads = 1;
    CampaignOptions par = seq;
    par.machine_threads = 2;
    ScenarioResult a = RunFileScenario(seed, seq);
    ScenarioResult b = RunFileScenario(seed, par);
    EXPECT_TRUE(a.ok) << "seed " << seed << ": " << a.failure;
    EXPECT_TRUE(b.ok) << "seed " << seed << ": " << b.failure;
    EXPECT_EQ(a.trace_digest, b.trace_digest) << "seed " << seed;
  }
}

}  // namespace
}  // namespace auragen
