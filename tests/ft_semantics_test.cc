// White-box tests of the fault-tolerance bookkeeping itself: write counts at
// the sender's backup (§5.1/§5.4), queue trimming by sync (§5.2), page
// account copy-on-sync (§7.6/§7.8), the §2 checkpoint baselines, and the
// negative tests showing recovery correctness *depends* on bus atomicity
// (DESIGN.md invariant 5).

#include <gtest/gtest.h>

#include "src/avm/assembler.h"
#include "src/kernel/native_body.h"
#include "src/machine/machine.h"
#include "src/paging/page_server.h"

namespace auragen {
namespace {

MachineOptions TwoClusters() {
  MachineOptions options;
  options.config.num_clusters = 2;
  return options;
}

// A chatty writer: sends `n` one-byte messages on ch:flood, never reads.
Executable Flooder(int n) {
  return MustAssemble(R"(
start:
    li r1, name
    li r2, 8
    sys open
    mov r10, r0
    li r8, 0
loop:
    mov r1, r10
    li r2, payload
    li r3, 1
    sys write
    addi r8, r8, 1
    li r9, )" + std::to_string(n) + R"(
    blt r8, r9, loop
halt_loop:
    sys yield
    jmp halt_loop
.data
name: .ascii "ch:flood"
payload: .ascii "x"
)");
}

// A sink that reads forever.
Executable Sink() {
  return MustAssemble(R"(
start:
    li r1, name
    li r2, 8
    sys open
    mov r10, r0
loop:
    mov r1, r10
    li r2, buf
    li r3, 4
    sys read
    jmp loop
.data
name: .ascii "ch:flood"
buf: .space 4
)");
}

TEST(FtSemantics, WriteCountsAccumulateAtSendersBackup) {
  MachineOptions options = TwoClusters();
  options.config.sync_time_limit_us = 60'000'000;  // no time-triggered syncs
  options.config.sync_reads_limit = 1'000'000;
  Machine machine(options);
  machine.Boot();
  Machine::UserSpawnOptions wopts;
  wopts.backup_cluster = 1;
  Machine::UserSpawnOptions sopts;
  sopts.backup_cluster = 0;
  sopts.sync_reads_limit = 1'000'000;
  sopts.sync_time_limit_us = 60'000'000;
  Gpid writer = machine.SpawnUserProgram(0, Flooder(5), wopts);
  machine.SpawnUserProgram(1, Sink(), sopts);
  machine.Run(5'000'000);

  // The writer's backup entry for the flood channel counted 5 writes.
  uint32_t counted = 0;
  machine.kernel(1).routing().ForEach([&](RoutingEntry& e) {
    if (e.owner == writer && e.backup_entry) {
      counted += e.writes_since_sync;
    }
  });
  // 5 data messages + the open request on the control channel.
  EXPECT_EQ(counted, 6u);
  EXPECT_EQ(machine.metrics().deliveries_count_only,
            machine.metrics().deliveries_primary);
}

TEST(FtSemantics, SyncTrimsBackupQueuesAndZeroesCounts) {
  MachineOptions options = TwoClusters();
  options.config.sync_reads_limit = 4;  // sync after 4 reads
  Machine machine(options);
  machine.Boot();
  Machine::UserSpawnOptions wopts;
  wopts.backup_cluster = 1;
  Machine::UserSpawnOptions sopts;
  sopts.backup_cluster = 0;
  sopts.sync_reads_limit = 4;
  Gpid sink = machine.SpawnUserProgram(1, Sink(), sopts);
  machine.SpawnUserProgram(0, Flooder(20), wopts);
  machine.Run(8'000'000);

  EXPECT_GT(machine.metrics().backup_msgs_trimmed, 0u);
  // After the sink's latest sync, its backup queue holds only the unread
  // suffix: strictly fewer than the 20 sent.
  size_t saved = 0;
  machine.kernel(0).routing().ForEach([&](RoutingEntry& e) {
    if (e.owner == sink && e.backup_entry) {
      saved += e.queue.size();
    }
  });
  EXPECT_LT(saved, 20u);
}

TEST(FtSemantics, PageAccountsCopyOnSync) {
  Machine machine(TwoClusters());
  machine.Boot();
  // Dirty several pages, hint a sync, then inspect the page server.
  Executable prog = MustAssemble(R"(
start:
    li r2, 0x4000
    li r3, 7
    st r3, r2, 0
    li r2, 0x5000
    st r3, r2, 0
    sys synchint
spin:
    sys yield
    jmp spin
)");
  Machine::UserSpawnOptions opts;
  opts.backup_cluster = 0;
  Gpid pid = machine.SpawnUserProgram(1, prog, opts);
  machine.Run(2'000'000);

  Pcb* ps = machine.kernel(machine.page_server_addr().primary).FindProcess(Machine::kPagePid);
  ASSERT_NE(ps, nullptr);
  auto* body = dynamic_cast<NativeBody*>(ps->body.get());
  ASSERT_NE(body, nullptr);
  auto* program = dynamic_cast<PageServerProgram*>(&body->program());
  ASSERT_NE(program, nullptr);
  // Both touched pages are in both accounts (invariant 4: equal after sync).
  EXPECT_TRUE(program->PrimaryHasPage(pid, 0x4000 / kAvmPageBytes));
  EXPECT_TRUE(program->BackupHasPage(pid, 0x4000 / kAvmPageBytes));
  EXPECT_TRUE(program->BackupHasPage(pid, 0x5000 / kAvmPageBytes));
  // Text page 0 shipped at first sync too.
  EXPECT_TRUE(program->BackupHasPage(pid, 0));
}

TEST(FtSemantics, CheckpointFullBaselineRunsAndStalls) {
  MachineOptions options = TwoClusters();
  options.config.strategy = FtStrategy::kCheckpointFull;
  Machine machine(options);
  machine.Boot();
  Executable prog = MustAssemble(R"(
start:
    li r2, 0
loop:
    addi r2, r2, 1
    li r3, 150000
    blt r2, r3, loop
    exit 0
)");
  Machine::UserSpawnOptions opts;
  opts.backup_cluster = 0;
  machine.SpawnUserProgram(1, prog, opts);
  ASSERT_TRUE(machine.RunUntilAllExited(60'000'000));
  machine.Settle();
  const Metrics& m = machine.metrics();
  EXPECT_GT(m.checkpoints, 0u);
  EXPECT_GT(m.checkpoint_bytes, 0u);
  EXPECT_GT(m.checkpoint_stall_us, 0u);
  EXPECT_EQ(m.syncs, 0u);
}

TEST(FtSemantics, IncrementalCheckpointShipsLessThanFull) {
  auto run = [](FtStrategy strategy) {
    MachineOptions options;
    options.config.num_clusters = 2;
    options.config.strategy = strategy;
    Machine machine(options);
    machine.Boot();
    // Touch one page repeatedly: incremental checkpoints stay small.
    Executable prog = MustAssemble(R"(
start:
    li r2, 0
loop:
    li r4, 0x8000
    st r2, r4, 0
    addi r2, r2, 1
    li r3, 150000
    blt r2, r3, loop
    exit 0
)");
    Machine::UserSpawnOptions opts;
    opts.backup_cluster = 0;
    machine.SpawnUserProgram(1, prog, opts);
    machine.RunUntilAllExited(90'000'000);
    machine.Settle();
    return machine.metrics().checkpoint_bytes;
  };
  uint64_t full = run(FtStrategy::kCheckpointFull);
  uint64_t incremental = run(FtStrategy::kCheckpointIncremental);
  ASSERT_GT(full, 0u);
  ASSERT_GT(incremental, 0u);
  EXPECT_LT(incremental, full);
}

TEST(FtSemantics, CheckpointRecoveryRestoresState) {
  MachineOptions options = TwoClusters();
  options.config.strategy = FtStrategy::kCheckpointFull;
  options.config.sync_time_limit_us = 8'000;  // checkpoint often
  Machine machine(options);
  machine.Boot();
  Executable prog = MustAssemble(R"(
start:
    li r8, 0
rounds:
    li r9, 0
spin:
    addi r9, r9, 1
    li r10, 6000
    blt r9, r10, spin
    addi r8, r8, 1
    li r10, 10
    blt r8, r10, rounds
    li r11, 0x8000
    ld r2, r11, 0     ; touch data page
    exit 7
)");
  Machine::UserSpawnOptions opts;
  opts.backup_cluster = 0;
  Gpid pid = machine.SpawnUserProgram(1, prog, opts);
  machine.Run(40'000);
  EXPECT_GT(machine.metrics().checkpoints, 0u);
  machine.CrashCluster(1);
  ASSERT_TRUE(machine.RunUntilAllExited(60'000'000));
  machine.Settle();
  EXPECT_EQ(machine.ExitStatus(pid), 7);
}

TEST(FtSemantics, NoFtModeSendsOneWay) {
  MachineOptions options = TwoClusters();
  options.config.strategy = FtStrategy::kNone;
  Machine machine(options);
  machine.Boot();
  Machine::UserSpawnOptions wopts;
  machine.SpawnUserProgram(0, Flooder(10), wopts);
  machine.SpawnUserProgram(1, Sink(), wopts);
  machine.Run(5'000'000);
  const Metrics& m = machine.metrics();
  EXPECT_GT(m.deliveries_primary, 0u);
  EXPECT_EQ(m.deliveries_backup, 0u);
  EXPECT_EQ(m.deliveries_count_only, 0u);
  EXPECT_EQ(m.syncs, 0u);
}

TEST(FtSemantics, SuppressionNeverResendsAfterRecovery) {
  // Invariant 2: total primary deliveries with a crash equals the
  // failure-free count — no message is received twice.
  auto run = [](bool crash) {
    MachineOptions options;
    options.config.num_clusters = 2;
    Machine machine(options);
    machine.Boot();
    Executable prog = MustAssemble(R"(
start:
    li r8, 0
rounds:
    li r9, 0
spin:
    addi r9, r9, 1
    li r10, 6000
    blt r9, r10, spin
    li r1, 2
    li r2, out
    li r3, 1
    sys write
    addi r8, r8, 1
    li r10, 10
    blt r8, r10, rounds
    exit 0
.data
out: .ascii "z"
)");
    Machine::UserSpawnOptions opts;
    opts.with_tty = true;
    opts.backup_cluster = 0;
    machine.SpawnUserProgram(1, prog, opts);
    if (crash) {
      machine.CrashClusterAt(machine.Now() + 55'000, 1);
    }
    machine.RunUntilAllExited(60'000'000);
    machine.Settle();
    return machine.TtyOutput(0);
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(FtSemantics, BrokenBusAtomicityBreaksRecovery) {
  // Negative test (invariant 5): with all-or-nothing delivery violated, at
  // least one crash point yields divergent output or a stuck recovery.
  bool violated = false;
  for (SimTime crash_at : {30'000u, 45'000u, 60'000u, 75'000u}) {
    MachineOptions options = TwoClusters();
    Machine machine(options);
    machine.Boot();
    machine.bus().InjectAtomicityViolation(AtomicityViolation::kDropPerDestination, 0.25,
                                           991 + crash_at);
    Executable prog = MustAssemble(R"(
start:
    li r8, 0
rounds:
    li r9, 0
spin:
    addi r9, r9, 1
    li r10, 6000
    blt r9, r10, spin
    li r1, 2
    li r2, out
    li r3, 1
    sys write
    addi r8, r8, 1
    li r10, 10
    blt r8, r10, rounds
    exit 0
.data
out: .ascii "q"
)");
    Machine::UserSpawnOptions opts;
    opts.with_tty = true;
    opts.backup_cluster = 0;
    machine.SpawnUserProgram(1, prog, opts);
    machine.CrashClusterAt(machine.Now() + crash_at, 1);
    bool done = machine.RunUntilAllExited(20'000'000);
    machine.Settle();
    if (!done || machine.TtyOutput(0) != "qqqqqqqqqq" || machine.TtyDuplicates() != 0) {
      violated = true;
      break;
    }
  }
  EXPECT_TRUE(violated) << "recovery survived broken atomicity — guarantees not load-bearing?";
}

}  // namespace
}  // namespace auragen
