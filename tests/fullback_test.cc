// Backup-mode tests (§7.3): fullbacks get a replacement backup before the
// new primary runs (and so survive *sequential* failures); quarterbacks run
// unprotected after one crash; channels to fullbacks freeze until the new
// backup's location is known (§7.10.1).

#include <gtest/gtest.h>

#include "src/avm/assembler.h"
#include "src/machine/machine.h"

namespace auragen {
namespace {

MachineOptions ThreeClusters() {
  MachineOptions options;
  options.config.num_clusters = 3;
  return options;
}

Executable SlowDigits(int rounds, uint32_t spin) {
  return MustAssemble(R"(
start:
    li r8, 0
rounds:
    li r9, 0
spin:
    addi r9, r9, 1
    li r10, )" + std::to_string(spin) + R"(
    blt r9, r10, spin
    li r10, 48
    add r10, r10, r8
    li r11, digit
    stb r10, r11, 0
    li r1, 2
    li r2, digit
    li r3, 1
    sys write
    addi r8, r8, 1
    li r10, )" + std::to_string(rounds) + R"(
    blt r8, r10, rounds
    exit 7
.data
digit: .byte 0
)");
}

TEST(Fullback, ReplacementBackupCreatedOnTakeover) {
  Machine machine(ThreeClusters());
  machine.Boot();
  Machine::UserSpawnOptions opts;
  opts.with_tty = true;
  opts.mode = BackupMode::kFullback;
  opts.backup_cluster = 1;
  Gpid pid = machine.SpawnUserProgram(2, SlowDigits(10, 6000), opts);
  machine.Run(60'000);
  uint64_t backups_before = machine.metrics().backups_created;
  machine.CrashCluster(2);
  ASSERT_TRUE(machine.RunUntilAllExited(90'000'000));
  machine.Settle();
  EXPECT_EQ(machine.ExitStatus(pid), 7);
  EXPECT_EQ(machine.TtyOutput(0), "0123456789");
  // A replacement backup materialized in the remaining cluster.
  EXPECT_GT(machine.metrics().backups_created, backups_before);
  // The new primary (cluster 1) has its backup at cluster 0.
  Pcb* p = machine.kernel(1).FindProcess(pid);
  if (p != nullptr) {  // may already have exited
    EXPECT_EQ(p->backup_cluster, 0u);
  }
}

TEST(Fullback, SurvivesTwoSequentialFailures) {
  Machine machine(ThreeClusters());
  machine.Boot();
  Machine::UserSpawnOptions opts;
  opts.with_tty = true;
  opts.mode = BackupMode::kFullback;
  opts.backup_cluster = 1;
  Gpid pid = machine.SpawnUserProgram(2, SlowDigits(12, 9000), opts);

  machine.Run(60'000);
  machine.CrashCluster(2);   // takeover at 1, new backup at 0
  machine.Run(80'000);
  machine.CrashCluster(1);   // second failure: takeover at 0
  ASSERT_TRUE(machine.RunUntilAllExited(120'000'000)) << "did not survive second failure";
  machine.Settle();
  EXPECT_EQ(machine.ExitStatus(pid), 7);
  EXPECT_EQ(machine.TtyOutput(0), "0123456789:;");  // 12 rounds: '0'..';'
  EXPECT_GE(machine.metrics().takeovers, 2u);
}

TEST(Fullback, QuarterbackDiesOnSecondFailure) {
  Machine machine(ThreeClusters());
  machine.Boot();
  Machine::UserSpawnOptions opts;
  opts.mode = BackupMode::kQuarterback;
  opts.backup_cluster = 1;
  Gpid pid = machine.SpawnUserProgram(2, SlowDigits(200, 20000), opts);
  machine.Run(60'000);
  machine.CrashCluster(2);
  machine.Run(80'000);
  // Recovered at cluster 1, running unprotected (§7.3).
  Pcb* p = machine.kernel(1).FindProcess(pid);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->backup_cluster, kNoCluster);
  machine.CrashCluster(1);
  machine.Run(2'000'000);
  // No backup anywhere: the process is gone for good.
  EXPECT_FALSE(machine.HasExited(pid));
  EXPECT_EQ(machine.kernel(0).FindProcess(pid), nullptr);
}

TEST(Fullback, SenderHoldsMessagesUntilBackupReady) {
  // A writer keeps sending to a fullback reader whose cluster crashes; all
  // messages arrive exactly once even though some were held (§7.10.1).
  Machine machine(ThreeClusters());
  machine.Boot();
  Executable writer = MustAssemble(R"(
start:
    li r1, name
    li r2, 5
    sys open
    mov r10, r0
    li r8, 0
loop:
    li r9, 0
pace:
    addi r9, r9, 1
    li r11, 2500
    blt r9, r11, pace
    li r11, buf
    li r12, 65
    add r12, r12, r8
    stb r12, r11, 0
    mov r1, r10
    li r2, buf
    li r3, 1
    sys write
    addi r8, r8, 1
    li r11, 12
    blt r8, r11, loop
    exit 0
.data
name: .ascii "ch:hf"
buf: .byte 0
)");
  Executable reader = MustAssemble(R"(
start:
    li r1, name
    li r2, 5
    sys open
    mov r10, r0
    li r8, 0
loop:
    mov r1, r10
    li r2, buf
    li r3, 1
    sys read
    li r12, 0
    beq r0, r12, done
    li r1, 2
    li r2, buf
    li r3, 1
    sys write
    addi r8, r8, 1
    li r11, 12
    blt r8, r11, loop
done:
    exit 0
.data
name: .ascii "ch:hf"
buf: .space 4
)");
  Machine::UserSpawnOptions wopts;
  wopts.backup_cluster = 1;
  Machine::UserSpawnOptions ropts;
  ropts.with_tty = true;
  ropts.mode = BackupMode::kFullback;
  ropts.backup_cluster = 1;
  machine.SpawnUserProgram(0, writer, wopts);
  Gpid rpid = machine.SpawnUserProgram(2, reader, ropts);
  machine.Run(35'000);
  machine.CrashCluster(2);
  ASSERT_TRUE(machine.RunUntilAllExited(120'000'000));
  machine.Settle();
  EXPECT_EQ(machine.ExitStatus(rpid), 0);
  EXPECT_EQ(machine.TtyOutput(0), "ABCDEFGHIJKL");
}

TEST(Fullback, PlacementAvoidsCrashedAndSelfClusters) {
  MachineOptions options;
  options.config.num_clusters = 4;
  Machine machine(options);
  machine.Boot();
  Machine::UserSpawnOptions opts;
  opts.mode = BackupMode::kFullback;
  opts.backup_cluster = 3;
  Gpid pid = machine.SpawnUserProgram(2, SlowDigits(100, 30000), opts);
  machine.Run(60'000);
  machine.CrashCluster(2);
  machine.Run(300'000);
  Pcb* p = machine.kernel(3).FindProcess(pid);
  ASSERT_NE(p, nullptr);
  EXPECT_NE(p->backup_cluster, 2u);
  EXPECT_NE(p->backup_cluster, 3u);
  EXPECT_NE(p->backup_cluster, kNoCluster);
}

}  // namespace
}  // namespace auragen
