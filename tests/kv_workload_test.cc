// Serving-workload subsystem tests (src/workload): the partitioned KV guest
// service, its closed-loop clients, and the SLO pipeline built on
// kRequestMark trace events.

#include <gtest/gtest.h>

#include "src/machine/machine.h"
#include "src/trace/analysis.h"
#include "src/workload/kv_service.h"
#include "src/workload/slo.h"

namespace auragen::workload {
namespace {

KvOptions SmallOptions() {
  KvOptions kv;
  kv.sessions = 12;
  kv.partitions = 4;
  kv.requests_per_session = 8;
  kv.think_spin = 16;
  kv.seed = 7;
  return kv;
}

MachineOptions SmallMachine() {
  MachineOptions options;
  options.config.num_clusters = 4;
  options.seed = 7;
  options.trace.enabled = true;
  options.trace.unbounded = true;
  return options;
}

SloReport RunKv(const MachineOptions& mo, const KvOptions& kv,
                SimTime crash_at = 0, uint32_t crash_cluster = 0) {
  Machine machine(mo);
  machine.Boot();
  KvDeployment d = DeployKv(machine, kv);
  if (crash_at != 0) {
    machine.CrashClusterAt(machine.Now() + crash_at, crash_cluster);
  }
  const bool done = machine.RunUntil(
      [&] { return KvClientsDone(machine, d); }, 500'000'000);
  machine.Settle();
  return BuildSloReport(machine.tracer()->Events(), machine, d, done);
}

// Every session writes its private key first and reads it back last; the
// plan tracks intermediate private ops too. A clean run must therefore
// complete with zero verification mismatches — read-your-own-writes.
TEST(KvWorkload, ReadYourOwnWrites) {
  SloReport r = RunKv(SmallMachine(), SmallOptions());
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.mismatches, 0u);
  EXPECT_EQ(r.completed, 12u * 8u);
  EXPECT_EQ(r.retries, 0u);
  EXPECT_GT(r.p50_us, 0u);
  EXPECT_GE(r.p999_us, r.p99_us);
  EXPECT_GE(r.p99_us, r.p50_us);
  EXPECT_GT(r.goodput_rps, 0.0);
}

// The plan is a pure function of (session, options): same seed, same plan;
// different seed, different shared-key traffic.
TEST(KvWorkload, PlanIsDeterministic) {
  KvOptions kv = SmallOptions();
  std::vector<KvRequest> a = PlanSession(5, kv);
  std::vector<KvRequest> b = PlanSession(5, kv);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].op, b[i].op);
    EXPECT_EQ(a[i].key, b[i].key);
    EXPECT_EQ(a[i].value, b[i].value);
  }
  EXPECT_EQ(a.front().op, 2u);    // leading private write
  EXPECT_TRUE(a.front().verify);
  EXPECT_EQ(a.back().op, 1u);     // closing private read-back
  EXPECT_TRUE(a.back().verify);
}

// Message-system FT: crash a cluster mid-run. Takeover revives the lost
// primaries and co-crashed clients transparently; no acked write is lost and
// the client-side retry path never fires.
TEST(KvWorkload, TransparentFailoverAfterClusterCrash) {
  // CrashClusterAt offsets from engine().Now(), which is already ~20ms after
  // boot + deploy; +4ms lands mid-stream of the ~[2ms,7ms] request window.
  SloReport r = RunKv(SmallMachine(), SmallOptions(), 4'000, 2);
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.mismatches, 0u);
  EXPECT_EQ(r.completed, 12u * 8u);
}

// Application-level primary/backup (replicas = 2, message-system FT off):
// crashing the primaries' cluster kills them for good, so every session must
// take the client-side retry/switchover path to the replica — and still
// verify all its private reads.
TEST(KvWorkload, ClientSwitchoverToReplica) {
  KvOptions kv = SmallOptions();
  kv.replicas = 2;
  kv.spread_servers = false;
  kv.primary_base = 2;
  kv.backup_base = 1;
  kv.client_clusters = {0, 1};
  MachineOptions mo = SmallMachine();
  mo.config.strategy = FtStrategy::kNone;
  SloReport r = RunKv(mo, kv, 4'000, 2);
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.mismatches, 0u);
  EXPECT_GT(r.retries, 0u);  // at least one session switched over
}

// Two identical runs must produce bit-identical traces — the SLO numbers
// are reproducible artifacts, not samples.
TEST(KvWorkload, DeterministicTraceDigest) {
  auto digest_of = [&]() {
    MachineOptions mo = SmallMachine();
    Machine machine(mo);
    machine.Boot();
    KvDeployment d = DeployKv(machine, SmallOptions());
    machine.CrashClusterAt(machine.Now() + 4'000, 1);
    machine.RunUntil([&] { return KvClientsDone(machine, d); }, 500'000'000);
    machine.Settle();
    return machine.tracer()->digest().ToString();
  };
  EXPECT_EQ(digest_of(), digest_of());
}

// The latency pipeline end to end: request marks pair up into the analysis
// histograms, and the histogram percentiles are ordered and bounded.
TEST(KvWorkload, MarksFeedLatencyHistograms) {
  MachineOptions mo = SmallMachine();
  Machine machine(mo);
  machine.Boot();
  KvOptions kv = SmallOptions();
  KvDeployment d = DeployKv(machine, kv);
  machine.RunUntil([&] { return KvClientsDone(machine, d); }, 500'000'000);
  machine.Settle();
  TraceAnalysis a = AnalyzeTrace(machine.tracer()->Events());
  EXPECT_EQ(a.requests_completed, 12u * 8u);
  EXPECT_EQ(a.request_latency.count(), 12u * 8u);
  EXPECT_EQ(a.request_read_latency.count() + a.request_write_latency.count(),
            a.requests_completed);
  EXPECT_LE(a.request_latency.p50(), a.request_latency.p99());
  EXPECT_LE(a.request_latency.p99(), a.request_latency.p999());
  EXPECT_LE(a.request_latency.p999(), a.request_latency.max_us());
  EXPECT_GE(a.request_latency.p50(), a.request_latency.min_us());
  EXPECT_GT(a.RequestGoodputPerSec(), 0.0);
}

}  // namespace
}  // namespace auragen::workload
