// The full Machine on the ShardPlan layout (DESIGN.md §17): real boots and
// fault-campaign scenarios must produce bit-identical trace digests at any
// worker-thread count. These are the machine-level counterparts of
// engine_test.cc's ClusterModel digest matrix — same shape, but the events
// under the digest are the real kernels, servers, bus, and disks.

#include <gtest/gtest.h>

#include "src/fault/campaign.h"
#include "src/machine/machine.h"

namespace auragen {
namespace {

struct BootDigest {
  uint64_t hash = 0;
  uint64_t count = 0;
  uint64_t dispatched = 0;
};

BootDigest BootAndRun(uint32_t clusters, uint64_t seed, uint32_t threads) {
  MachineOptions mo;
  mo.config.num_clusters = clusters;
  mo.seed = seed;
  mo.engine_threads = threads;
  mo.trace.enabled = true;
  mo.trace.unbounded = false;
  mo.trace.ring_capacity = 4096;
  Machine machine(mo);
  machine.Boot();
  machine.Run(50'000);
  BootDigest d;
  d.hash = machine.tracer()->digest().hash;
  d.count = machine.tracer()->digest().count;
  d.dispatched = machine.dispatched();
  return d;
}

TEST(MachineShards, BootDigestMatrixMatchesSequential) {
  for (uint32_t clusters : {4u, 8u}) {
    for (uint64_t seed : {1ull, 7ull, 42ull}) {
      const BootDigest want = BootAndRun(clusters, seed, 1);
      ASSERT_GT(want.count, 0u);
      for (uint32_t threads : {2u, 4u}) {
        const BootDigest got = BootAndRun(clusters, seed, threads);
        EXPECT_EQ(got.hash, want.hash)
            << "clusters=" << clusters << " seed=" << seed << " threads=" << threads;
        EXPECT_EQ(got.count, want.count)
            << "clusters=" << clusters << " seed=" << seed << " threads=" << threads;
        EXPECT_EQ(got.dispatched, want.dispatched)
            << "clusters=" << clusters << " seed=" << seed << " threads=" << threads;
      }
    }
  }
}

TEST(MachineShards, ParallelMachineMatchesSequential) {
  // End-to-end: full campaign scenarios (seeded workload + seeded fault
  // plan, reference/faulted runs, every invariant) with the machine's shards
  // spread over worker threads. The faulted run's trace digest is the
  // cross-mode oracle; ok-ness checks everything else.
  CampaignOptions opt;
  opt.num_clusters = 4;
  opt.check_determinism = false;  // the thread matrix below is the replay
  for (uint64_t seed : {1ull, 5ull, 11ull, 23ull}) {
    opt.machine_threads = 1;
    const ScenarioResult want = RunScenario(seed, opt);
    EXPECT_TRUE(want.ok) << "seed=" << seed << ": " << want.failure;
    for (uint32_t threads : {2u, 4u}) {
      opt.machine_threads = threads;
      const ScenarioResult got = RunScenario(seed, opt);
      EXPECT_TRUE(got.ok) << "seed=" << seed << " threads=" << threads << ": "
                          << got.failure;
      EXPECT_EQ(got.scenario, want.scenario);
      EXPECT_EQ(got.trace_digest.hash, want.trace_digest.hash)
          << "seed=" << seed << " threads=" << threads << " (" << want.scenario << ")";
      EXPECT_EQ(got.trace_digest.count, want.trace_digest.count)
          << "seed=" << seed << " threads=" << threads;
    }
  }
}

TEST(MachineShards, ShardPlanDescribesTheLayout) {
  MachineOptions mo;
  mo.config.num_clusters = 4;
  Machine machine(mo);
  EXPECT_EQ(machine.shard_plan().num_shards, 5u);
  EXPECT_EQ(machine.shard_plan().shard_of_cluster(2), 3u);
  EXPECT_EQ(machine.shard_plan().shared_shard(), kSharedShard);
}

}  // namespace
}  // namespace auragen
