// End-to-end smoke tests: boot the machine, run guest programs, observe
// terminal output — no failures injected yet.

#include <gtest/gtest.h>

#include "src/avm/assembler.h"
#include "src/machine/machine.h"

namespace auragen {
namespace {

MachineOptions TwoClusters() {
  MachineOptions options;
  options.config.num_clusters = 2;
  return options;
}

TEST(MachineSmoke, BootsAndSettles) {
  Machine machine(TwoClusters());
  machine.Boot();
  EXPECT_TRUE(machine.ClusterAlive(0));
  EXPECT_TRUE(machine.ClusterAlive(1));
  // Servers live: fs+tty+ps in cluster 0 (+ page backup parked), page in 1.
  EXPECT_GE(machine.kernel(0).num_live_processes(), 3u);
  EXPECT_GE(machine.kernel(1).num_live_processes(), 1u);
}

TEST(MachineSmoke, HelloWorldOnTty) {
  Machine machine(TwoClusters());
  machine.Boot();
  Executable exe = MustAssemble(R"(
start:
    li r1, 2          ; tty fd
    li r2, msg
    li r3, 13
    sys write
    exit 0
.data
msg: .ascii "hello, world\n"
)");
  Machine::UserSpawnOptions opts;
  opts.with_tty = true;
  Gpid pid = machine.SpawnUserProgram(0, exe, opts);
  ASSERT_TRUE(machine.RunUntilAllExited(2'000'000)) << "program did not exit";
  machine.Settle();
  EXPECT_EQ(machine.ExitStatus(pid), 0);
  EXPECT_EQ(machine.TtyOutput(0), "hello, world\n");
}

TEST(MachineSmoke, DebugPutcAndArithmetic) {
  Machine machine(TwoClusters());
  machine.Boot();
  // Print '0' + (6*7)%10 via the unsafe debug port.
  Executable exe = MustAssemble(R"(
start:
    li r2, 6
    li r3, 7
    mul r2, r2, r3
    li r3, 10
    mod r2, r2, r3
    li r3, 48
    add r1, r2, r3
    sys putc
    exit 5
)");
  Gpid pid = machine.SpawnUserProgram(1, exe);
  ASSERT_TRUE(machine.RunUntilAllExited(2'000'000));
  machine.Settle();
  EXPECT_EQ(machine.ExitStatus(pid), 5);
  EXPECT_EQ(machine.DebugOutput(pid), "2");
}

TEST(MachineSmoke, GettimeGoesThroughProcessServer) {
  Machine machine(TwoClusters());
  machine.Boot();
  // gettime twice; exit 0 iff t2 >= t1 and t1 > 0.
  Executable exe = MustAssemble(R"(
start:
    sys gettime
    mov r10, r0
    sys gettime
    mov r11, r0
    li r12, 0
    beq r10, r12, bad
    blt r11, r10, bad
    exit 0
bad:
    exit 1
)");
  Gpid pid = machine.SpawnUserProgram(0, exe);
  ASSERT_TRUE(machine.RunUntilAllExited(2'000'000));
  machine.Settle();
  EXPECT_EQ(machine.ExitStatus(pid), 0);
}

TEST(MachineSmoke, UserChannelPairing) {
  Machine machine(TwoClusters());
  machine.Boot();
  // Writer opens ch:pipe and sends one message; reader opens and reads it,
  // then emits it to the tty.
  Executable writer = MustAssemble(R"(
start:
    li r1, name
    li r2, 7
    sys open
    mov r10, r0        ; fd
    li r12, 0
    blt r10, r12, bad
    mov r1, r10
    li r2, payload
    li r3, 5
    sys write
    exit 0
bad:
    exit 1
.data
name: .ascii "ch:pipe"
payload: .ascii "pong!"
)");
  Executable reader = MustAssemble(R"(
start:
    li r1, name
    li r2, 7
    sys open
    mov r10, r0
    li r12, 0
    blt r10, r12, bad
    mov r1, r10
    li r2, buf
    li r3, 64
    sys read
    mov r11, r0        ; length
    li r1, 2
    li r2, buf
    mov r3, r11
    sys write          ; echo to tty
    exit 0
bad:
    exit 2
.data
name: .ascii "ch:pipe"
buf: .space 64
)");
  Machine::UserSpawnOptions reader_opts;
  reader_opts.with_tty = true;
  Gpid wpid = machine.SpawnUserProgram(0, writer);
  Gpid rpid = machine.SpawnUserProgram(1, reader, reader_opts);
  ASSERT_TRUE(machine.RunUntilAllExited(5'000'000));
  machine.Settle();
  EXPECT_EQ(machine.ExitStatus(wpid), 0);
  EXPECT_EQ(machine.ExitStatus(rpid), 0);
  EXPECT_EQ(machine.TtyOutput(0), "pong!");
}

TEST(MachineSmoke, FileWriteThenReadBack) {
  Machine machine(TwoClusters());
  machine.Boot();
  Executable prog = MustAssemble(R"(
start:
    li r1, fname
    li r2, 8
    sys open
    mov r10, r0
    li r12, 0
    blt r10, r12, bad
    mov r1, r10
    li r2, payload
    li r3, 11
    sys write          ; file write blocks for the server's status
    li r12, 11
    bne r0, r12, bad
    ; reopen by a second fd and read back
    li r1, fname
    li r2, 8
    sys open
    mov r11, r0
    mov r1, r11
    li r2, buf
    li r3, 64
    sys read
    li r12, 11
    bne r0, r12, bad
    ; compare first byte
    li r2, buf
    ldb r3, r2, 0
    li r12, 'd'
    bne r3, r12, bad
    li r1, 2
    li r2, buf
    li r3, 11
    sys write
    exit 0
bad:
    exit 1
.data
fname: .ascii "data.log"
payload: .ascii "durable 123"
buf: .space 64
)");
  Machine::UserSpawnOptions opts;
  opts.with_tty = true;
  Gpid pid = machine.SpawnUserProgram(0, prog, opts);
  ASSERT_TRUE(machine.RunUntilAllExited(10'000'000));
  machine.Settle();
  EXPECT_EQ(machine.ExitStatus(pid), 0);
  EXPECT_EQ(machine.TtyOutput(0), "durable 123");
}

TEST(MachineSmoke, SyncsHappenDuringExecution) {
  Machine machine(TwoClusters());
  machine.Boot();
  // A loop that reads nothing but runs long enough to trip the time-based
  // sync trigger (§5.2).
  Executable prog = MustAssemble(R"(
start:
    li r2, 0
    li r3, 200000
loop:
    addi r2, r2, 1
    blt r2, r3, loop
    exit 0
)");
  machine.SpawnUserProgram(0, prog);
  ASSERT_TRUE(machine.RunUntilAllExited(30'000'000));
  machine.Settle();
  EXPECT_GT(machine.metrics().syncs, 0u);
  EXPECT_GT(machine.metrics().sync_pages_shipped, 0u);
}

}  // namespace
}  // namespace auragen
