// Multi-failure crash-path regression tests: overlapping crash windows,
// crashes landing between a sync's page shipment and its apply, a backup
// cluster dying before its primary (fullback re-protection), and a freshly
// chosen replacement-backup cluster dying before peers consume its
// kBackupReady. Each scenario failed (stall, lost message, or AURAGEN_CHECK
// fire) at some point during development of the fault-injection campaign;
// the reproducing faultcamp seeds are recorded in tests/fault_campaign_test.cc.

#include <gtest/gtest.h>

#include <string>

#include "src/avm/assembler.h"
#include "src/machine/machine.h"

namespace auragen {
namespace {

MachineOptions FourClusters() {
  MachineOptions options;
  options.config.num_clusters = 4;
  options.config.sync_reads_limit = 4;
  options.trace.enabled = true;
  options.trace.unbounded = true;
  return options;
}

// Paced producer: writes items 1..N on a named channel.
Executable Producer(int items, int pace) {
  return MustAssemble(R"(
start:
    li r1, name
    li r2, 4
    sys open
    mov r10, r0
    li r8, 1
loop:
    li r9, 0
pace:
    addi r9, r9, 1
    li r11, )" + std::to_string(pace) + R"(
    blt r9, r11, pace
    li r11, buf
    st r8, r11, 0
    mov r1, r10
    li r2, buf
    li r3, 4
    sys write
    addi r8, r8, 1
    li r11, )" + std::to_string(items + 1) + R"(
    blt r8, r11, loop
    exit 0
.data
name: .ascii "ch:m"
buf: .word 0
)");
}

// Consumer: reads N items, echoes each as a letter on its tty line.
Executable Consumer(int items) {
  return MustAssemble(R"(
start:
    li r1, name
    li r2, 4
    sys open
    mov r10, r0
    li r8, 0
loop:
    mov r1, r10
    li r2, buf
    li r3, 4
    sys read
    li r11, buf
    ld r2, r11, 0
    li r3, 26
    mod r2, r2, r3
    li r3, 97
    add r2, r2, r3
    li r11, out
    stb r2, r11, 0
    li r1, 2
    li r2, out
    li r3, 1
    sys write
    addi r8, r8, 1
    li r11, )" + std::to_string(items) + R"(
    blt r8, r11, loop
    exit 0
.data
name: .ascii "ch:m"
buf: .word 0
out: .byte 0
)");
}

struct PairHandles {
  Gpid producer;
  Gpid consumer;
};

PairHandles SpawnPair(Machine& machine, ClusterId pc, ClusterId pb, ClusterId cc,
                      ClusterId cb, int items, int pace, BackupMode mode) {
  Machine::UserSpawnOptions popts;
  popts.mode = mode;
  popts.backup_cluster = pb;
  Machine::UserSpawnOptions copts;
  copts.mode = mode;
  copts.backup_cluster = cb;
  copts.with_tty = true;
  copts.tty_line = 0;
  PairHandles h;
  h.producer = machine.SpawnUserProgram(pc, Producer(items, pace), popts);
  h.consumer = machine.SpawnUserProgram(cc, Consumer(items), copts);
  return h;
}

std::string ExpectedOutput(int items) {
  std::string want;
  for (int i = 1; i <= items; ++i) {
    want.push_back(static_cast<char>('a' + (i % 26)));
  }
  return want;
}

// First trace event of `kind` for `pid` at or after `after`; 0 if none.
SimTime FirstEventAt(Machine& machine, TraceEventKind kind, Gpid pid, SimTime after) {
  for (const TraceEvent& ev : machine.tracer()->Events()) {
    if (ev.kind == kind && ev.gpid == pid.value && ev.ts >= after) {
      return ev.ts;
    }
  }
  return 0;
}

// Two clusters die within one crash-scan window. Survivors must keep
// transmission disabled until BOTH crash handlers have drained
// (Kernel::pending_crash_handlers_) — releasing after the first would flush
// messages still addressed with routing state naming the second dead
// cluster. The workload's backups sit on the dying clusters so the rebuild
// path runs under the overlapped handling too.
TEST(MultiFailure, TwoClustersCrashWithinOneScanWindow) {
  constexpr int kItems = 9;
  Machine machine(FourClusters());
  machine.Boot();
  PairHandles pair = SpawnPair(machine, /*pc=*/0, /*pb=*/2, /*cc=*/1, /*cb=*/3,
                               kItems, /*pace=*/5000, BackupMode::kFullback);
  machine.CrashClusterAt(machine.Now() + 30'000, 2);
  machine.CrashClusterAt(machine.Now() + 30'001, 3);
  ASSERT_TRUE(machine.RunUntilAllExited(600'000'000));
  machine.Settle();
  EXPECT_EQ(machine.ExitStatus(pair.producer), 0);
  EXPECT_EQ(machine.ExitStatus(pair.consumer), 0);
  EXPECT_EQ(machine.TtyOutput(0), ExpectedOutput(kItems));
  EXPECT_EQ(machine.TtyDuplicates(), 0u);
}

// A crash landing between a sync's page shipment and the backup's apply of
// the sync record: the backup must recover from the *previous* coherent
// sync (page account and context stage together, §7.8 atomicity). The ship
// time is harvested from an identical fault-free run, so the crash lands in
// the window deterministically.
TEST(MultiFailure, CrashBetweenPageShipAndSync) {
  constexpr int kItems = 9;
  SimTime ship_at = 0;
  Gpid probe_consumer;
  {
    Machine reference(FourClusters());
    reference.Boot();
    PairHandles pair = SpawnPair(reference, 0, 2, 1, 3, kItems, 5000,
                                 BackupMode::kFullback);
    probe_consumer = pair.consumer;
    ASSERT_TRUE(reference.RunUntilAllExited(600'000'000));
    ship_at = FirstEventAt(reference, TraceEventKind::kPageShip, pair.consumer, 0);
    ASSERT_NE(ship_at, 0u) << "reference run never synced the consumer";
  }
  Machine machine(FourClusters());
  machine.Boot();
  PairHandles pair = SpawnPair(machine, 0, 2, 1, 3, kItems, 5000,
                               BackupMode::kFullback);
  ASSERT_EQ(pair.consumer.value, probe_consumer.value);
  // +2µs: after the dirty pages and sync record are enqueued at c1, before
  // the backup at c3 applies them (bus latency alone is longer).
  machine.CrashClusterAt(ship_at + 2, 1);
  ASSERT_TRUE(machine.RunUntilAllExited(600'000'000));
  machine.Settle();
  EXPECT_EQ(machine.ExitStatus(pair.producer), 0);
  EXPECT_EQ(machine.ExitStatus(pair.consumer), 0);
  EXPECT_EQ(machine.TtyOutput(0), ExpectedOutput(kItems));
}

// Sequential failures against one fullback process: first its backup
// cluster dies (the kernel must re-establish protection — and peers must
// freeze the channels until the replacement's location is announced), then
// the primary dies. The replacement backup must hold every message the
// primary read after the first crash, or takeover trips the saved-queue
// invariant in ApplySyncAtBackup.
TEST(MultiFailure, BackupClusterDiesThenPrimaryDies) {
  constexpr int kItems = 12;
  // Reference run with only the backup crash: harvest a delivery to the
  // consumer well after re-protection, so the primary crash below lands
  // while the consumer is provably still running.
  SimTime late_read_at = 0;
  {
    Machine reference(FourClusters());
    reference.Boot();
    PairHandles pair = SpawnPair(reference, /*pc=*/0, /*pb=*/1, /*cc=*/2,
                                 /*cb=*/3, kItems, /*pace=*/5000,
                                 BackupMode::kFullback);
    SimTime base = reference.Now();
    reference.CrashClusterAt(base + 30'000, 3);
    ASSERT_TRUE(reference.RunUntilAllExited(600'000'000));
    late_read_at = FirstEventAt(reference, TraceEventKind::kDeliverPrimary,
                                pair.consumer, base + 60'000);
    ASSERT_NE(late_read_at, 0u) << "no delivery after re-protection";
  }
  Machine machine(FourClusters());
  machine.Boot();
  PairHandles pair = SpawnPair(machine, /*pc=*/0, /*pb=*/1, /*cc=*/2, /*cb=*/3,
                               kItems, /*pace=*/5000, BackupMode::kFullback);
  SimTime base = machine.Now();
  machine.CrashClusterAt(base + 30'000, 3);    // consumer's backup dies
  machine.CrashClusterAt(late_read_at + 10, 2);  // then the consumer's primary
  ASSERT_TRUE(machine.RunUntilAllExited(600'000'000));
  machine.Settle();
  // Non-vacuous: the consumer must actually have been taken over (the
  // second crash landed before it finished).
  EXPECT_NE(FirstEventAt(machine, TraceEventKind::kTakeover, pair.consumer, 0), 0u);
  EXPECT_EQ(machine.ExitStatus(pair.producer), 0);
  EXPECT_EQ(machine.ExitStatus(pair.consumer), 0);
  EXPECT_EQ(machine.TtyOutput(0), ExpectedOutput(kItems));
}

// The cluster chosen as a takeover's replacement backup dies right after
// the takeover — around the time peers are consuming kBackupReady and
// releasing writes held for the frozen fullback. The new primary must
// rebuild at yet another cluster and re-announce; held senders must not
// release into the void or stay frozen forever.
TEST(MultiFailure, ReplacementBackupClusterDiesBeforeReadyConsumed) {
  constexpr int kItems = 12;
  // Consumer primary c2, backup c3: crashing c2 moves it to c3, and the
  // replacement backup lands at c0 (lowest live cluster). Crashing c0 next
  // leaves c1 — a server home — alive throughout; killing both homes would
  // be unsurvivable by design, not a recovery bug.
  SimTime takeover_at = 0;
  {
    Machine reference(FourClusters());
    reference.Boot();
    PairHandles pair = SpawnPair(reference, /*pc=*/1, /*pb=*/3, /*cc=*/2,
                                 /*cb=*/3, kItems, 5000, BackupMode::kFullback);
    reference.CrashClusterAt(reference.Now() + 40'000, 2);
    ASSERT_TRUE(reference.RunUntilAllExited(600'000'000));
    takeover_at = FirstEventAt(reference, TraceEventKind::kTakeover, pair.consumer, 0);
    ASSERT_NE(takeover_at, 0u) << "reference run never took over the consumer";
  }
  Machine machine(FourClusters());
  machine.Boot();
  PairHandles pair = SpawnPair(machine, /*pc=*/1, /*pb=*/3, /*cc=*/2,
                               /*cb=*/3, kItems, 5000, BackupMode::kFullback);
  machine.CrashClusterAt(machine.Now() + 40'000, 2);
  // The consumer takes over at c3 and (c2 dead) rebuilds its backup at the
  // lowest free cluster, c0; kill c0 moments after the takeover, while
  // kBackupReady and the held releases are still in flight.
  machine.CrashClusterAt(takeover_at + 30, 0);
  ASSERT_TRUE(machine.RunUntilAllExited(600'000'000));
  machine.Settle();
  EXPECT_EQ(machine.ExitStatus(pair.producer), 0);
  EXPECT_EQ(machine.ExitStatus(pair.consumer), 0);
  EXPECT_EQ(machine.TtyOutput(0), ExpectedOutput(kItems));
}

// A message's save leg arriving after the destination's backup entry
// flipped to primary (takeover already ran) must be delivered to the
// flipped entry, not dropped: both legs ride one bus transmission, so a
// late save leg is a message the dead primary never read. Reproduces the
// process-kill race where the victim's peer sent with stale routing in the
// few microseconds between the kill and its own kProcCrash notice.
TEST(MultiFailure, SaveLegArrivingAfterTakeoverFlipIsDelivered) {
  constexpr int kItems = 9;
  SimTime read_at = 0;
  {
    Machine reference(FourClusters());
    reference.Boot();
    PairHandles pair = SpawnPair(reference, 0, 2, 1, 3, kItems, 5000,
                                 BackupMode::kQuarterback);
    ASSERT_TRUE(reference.RunUntilAllExited(600'000'000));
    // A mid-stream delivery to the consumer: kill it just before the next one.
    read_at = FirstEventAt(reference, TraceEventKind::kDeliverPrimary,
                           pair.consumer, 30'000);
    ASSERT_NE(read_at, 0u);
  }
  Machine machine(FourClusters());
  machine.Boot();
  PairHandles pair = SpawnPair(machine, 0, 2, 1, 3, kItems, 5000,
                               BackupMode::kQuarterback);
  Gpid victim = pair.consumer;
  machine.ScheduleControlAt(read_at + 200, [&machine, victim] {
    machine.FailProcess(1, victim);
  });
  ASSERT_TRUE(machine.RunUntilAllExited(600'000'000));
  machine.Settle();
  EXPECT_EQ(machine.ExitStatus(pair.producer), 0);
  EXPECT_EQ(machine.ExitStatus(pair.consumer), 0);
  EXPECT_EQ(machine.TtyOutput(0), ExpectedOutput(kItems));
}

}  // namespace
}  // namespace auragen
