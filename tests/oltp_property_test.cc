// Property-based sweep in the paper's motivating environment (§3: on-line
// transaction processing): a client streams debits/credits to an account
// manager; a single cluster crash is injected at a parameterized instant in
// either cluster. For EVERY (cluster, instant) pair the externally visible
// result must equal the failure-free run — DESIGN.md invariant 1 explored
// across the crash-point space rather than at hand-picked times.

#include <gtest/gtest.h>

#include <tuple>

#include "src/avm/assembler.h"
#include "src/machine/machine.h"

namespace auragen {
namespace {

// Client: sends 24 transaction messages {amount = i} on ch:bank, paced.
Executable BankClient() {
  return MustAssemble(R"(
start:
    li r1, name
    li r2, 7
    sys open
    mov r10, r0
    li r8, 1
loop:
    li r9, 0
pace:
    addi r9, r9, 1
    li r11, 1500
    blt r9, r11, pace
    li r11, buf
    st r8, r11, 0
    mov r1, r10
    li r2, buf
    li r3, 4
    sys write
    addi r8, r8, 1
    li r11, 25
    blt r8, r11, loop
    exit 0
.data
name: .ascii "ch:bank"
buf: .word 0
)");
}

// Account manager: applies 24 transactions to a balance held in a data
// page, emits a progress mark every 6, then prints the final balance as
// three decimal digits. 1+2+...+24 = 300.
Executable BankServer() {
  return MustAssemble(R"(
start:
    li r1, name
    li r2, 7
    sys open
    mov r10, r0
    li r8, 0           ; txn count
loop:
    mov r1, r10
    li r2, buf
    li r3, 4
    sys read
    li r11, buf
    ld r2, r11, 0
    li r11, balance
    ld r3, r11, 0
    add r3, r3, r2
    st r3, r11, 0
    addi r8, r8, 1
    ; progress mark every 6 txns
    li r11, 6
    mod r12, r8, r11
    li r11, 0
    bne r12, r11, skip
    li r1, 2
    li r2, mark
    li r3, 1
    sys write
skip:
    li r11, 24
    blt r8, r11, loop
    ; print balance as 3 digits
    li r11, balance
    ld r2, r11, 0
    li r3, 100
    div r4, r2, r3     ; hundreds
    li r5, 48
    add r4, r4, r5
    li r11, out
    stb r4, r11, 0
    li r3, 100
    mod r2, r2, r3
    li r3, 10
    div r4, r2, r3
    add r4, r4, r5
    stb r4, r11, 1
    mod r2, r2, r3
    add r4, r2, r5
    stb r4, r11, 2
    li r1, 2
    li r2, out
    li r3, 3
    sys write
    exit 0
.data
name: .ascii "ch:bank"
buf: .word 0
balance: .word 0
mark: .ascii "."
out: .space 4
)");
}

std::string RunBank(ClusterId crash_cluster, SimTime crash_at, bool* completed) {
  MachineOptions options;
  options.config.num_clusters = 2;
  options.config.sync_reads_limit = 5;  // sync often enough to matter
  Machine machine(options);
  machine.Boot();
  Machine::UserSpawnOptions sopts;
  sopts.with_tty = true;
  sopts.backup_cluster = 0;
  Machine::UserSpawnOptions copts;
  copts.backup_cluster = 1;
  Gpid server = machine.SpawnUserProgram(1, BankServer(), sopts);
  Gpid client = machine.SpawnUserProgram(0, BankClient(), copts);
  (void)server;
  (void)client;
  ClusterId tty_primary_at_crash = machine.tty_server_addr().primary;
  if (crash_at != 0) {
    machine.CrashClusterAt(machine.Now() + crash_at, crash_cluster);
  }
  *completed = machine.RunUntilAllExited(120'000'000);
  machine.Settle();
  if (crash_cluster == tty_primary_at_crash && crash_at != 0) {
    // The tty server itself died: §7.9 allows re-emission of requests
    // serviced since its last explicit sync. Bounded by the sync interval.
    EXPECT_LE(machine.TtyDuplicates(), machine.config().num_clusters * 8u);
  } else {
    // User-process recovery alone never duplicates device output (§5.4).
    EXPECT_EQ(machine.TtyDuplicates(), 0u);
  }
  return machine.TtyOutput(0);
}

class OltpCrashSweep : public ::testing::TestWithParam<std::tuple<ClusterId, SimTime>> {};

TEST_P(OltpCrashSweep, BalanceAndMarksSurvive) {
  auto [cluster, crash_at] = GetParam();
  bool completed = false;
  std::string out = RunBank(cluster, crash_at, &completed);
  ASSERT_TRUE(completed) << "stuck: crash of c" << cluster << " at +" << crash_at;
  EXPECT_EQ(out, "....300") << "crash of c" << cluster << " at +" << crash_at;
}

INSTANTIATE_TEST_SUITE_P(
    CrashPoints, OltpCrashSweep,
    ::testing::Combine(::testing::Values(0u, 1u),
                       ::testing::Values(0u, 20'000u, 33'000u, 47'000u, 61'000u, 75'000u,
                                         90'000u, 120'000u, 180'000u)),
    [](const ::testing::TestParamInfo<OltpCrashSweep::ParamType>& param_info) {
      return "c" + std::to_string(std::get<0>(param_info.param)) + "_t" +
             std::to_string(std::get<1>(param_info.param));
    });

}  // namespace
}  // namespace auragen
