// Test harness that drives a NativeProgram directly: it plays the kernel's
// role, answering device and channel syscalls from canned state, so server
// state machines (file/page/tty/process server) can be unit-tested without
// a machine — including their §7.9 serialize/apply/replay behaviour.

#ifndef AURAGEN_TESTS_PROGRAM_HARNESS_H_
#define AURAGEN_TESTS_PROGRAM_HARNESS_H_

#include <deque>
#include <map>
#include <string>
#include <vector>

#include "src/core/wire.h"
#include "src/kernel/native_body.h"
#include "src/servers/protocol.h"

namespace auragen {

class ProgramHarness {
 public:
  explicit ProgramHarness(NativeProgram& program) : program_(program) {}

  // Emulates NativeBody's post-restore entry: the restored program's first
  // Next() call arrives with first=false (it is not a fresh start).
  void MarkRestored() { first_ = false; }

  struct Sent {
    uint64_t channel = 0;
    uint64_t kind = 0;  // kWriteChan `a` argument
    Bytes payload;
  };

  // An incoming message for the read-any queue.
  void Push(uint64_t channel, Gpid src, uint32_t tag, MsgKind kind, Bytes body) {
    Incoming in;
    ByteWriter w;
    w.U64(channel);
    w.U64(src.value);
    w.U32(tag);
    w.U8(static_cast<uint8_t>(kind));
    w.Blob(body);
    in.payload = w.Take();
    in.body_size = 0;
    incoming_.push_back(std::move(in));
  }

  // Advances the program until it blocks on an empty read-any queue (or a
  // step budget runs out — treated as a livelock failure).
  void Drain(int max_steps = 10000) {
    for (int i = 0; i < max_steps; ++i) {
      SyscallRequest req = program_.Next(last_, first_);
      first_ = false;
      last_ = SyscallResult{};
      if (req.num == Sys::kRead && req.a == kAnyChannel) {
        if (incoming_.empty()) {
          pending_read_ = true;
          return;
        }
        last_.data = std::move(incoming_.front().payload);
        last_.rv = static_cast<int64_t>(last_.data.size());
        incoming_.pop_front();
        continue;
      }
      ServiceNative(req);
    }
    AURAGEN_PANIC("program did not quiesce");
  }

  // Resumes a program parked in read-any with freshly Pushed messages.
  void Deliver() {
    AURAGEN_CHECK(pending_read_) << "program not blocked in read-any";
    AURAGEN_CHECK(!incoming_.empty());
    last_.data = std::move(incoming_.front().payload);
    last_.rv = static_cast<int64_t>(last_.data.size());
    incoming_.pop_front();
    pending_read_ = false;
    // Continue from the read completion.
    for (int i = 0; i < 10000; ++i) {
      SyscallRequest req = program_.Next(last_, false);
      last_ = SyscallResult{};
      if (req.num == Sys::kRead && req.a == kAnyChannel) {
        if (incoming_.empty()) {
          pending_read_ = true;
          return;
        }
        last_.data = std::move(incoming_.front().payload);
        last_.rv = static_cast<int64_t>(last_.data.size());
        incoming_.pop_front();
        continue;
      }
      ServiceNative(req);
    }
    AURAGEN_PANIC("program did not quiesce");
  }

  // --- observable effects ---
  std::vector<Sent> sent;                 // kWriteChan calls
  std::vector<Bytes> server_syncs;        // kServerSyncSend payloads
  std::vector<Bytes> tty_emits;           // kTtyEmit payloads
  std::vector<ChanCreate> accepts;        // kAcceptChan calls
  std::vector<std::pair<uint64_t, uint64_t>> timers;  // (delay, cookie)
  std::map<BlockNum, Bytes> disk;
  uint64_t disk_reads = 0;
  uint64_t disk_writes = 0;
  uint64_t disk_write_batches = 0;  // kDiskWriteVec transactions

  // --- canned environment ---
  Gpid who_pid = Gpid::Make(31, 99);
  ClusterId who_cluster = 0;
  ClusterId who_backup = 1;
  SimTime now = 1000;
  std::map<uint64_t, uint64_t> find_chan;  // tag -> channel id

 private:
  struct Incoming {
    Bytes payload;
    size_t body_size;
  };

  void ServiceNative(const SyscallRequest& req) {
    switch (static_cast<NativeSys>(req.num)) {
      case NativeSys::kDiskRead: {
        ++disk_reads;
        auto it = disk.find(static_cast<BlockNum>(req.a));
        last_.rv = 0;
        last_.data = it != disk.end() ? it->second : Bytes{};
        break;
      }
      case NativeSys::kDiskWrite:
        ++disk_writes;
        disk[static_cast<BlockNum>(req.a)] = req.data;
        last_.rv = 0;
        break;
      case NativeSys::kDiskWriteVec: {
        // One multi-block transaction; all blocks land atomically.
        ++disk_write_batches;
        ByteReader r(req.data);
        uint32_t n = r.U32();
        for (uint32_t i = 0; i < n; ++i) {
          BlockNum block = r.U32();
          disk[block] = r.Blob();
          ++disk_writes;
        }
        last_.rv = 0;
        break;
      }
      case NativeSys::kServerSyncSend:
        server_syncs.push_back(req.data);
        last_.rv = 0;
        break;
      case NativeSys::kTtyEmit:
        tty_emits.push_back(req.data);
        last_.rv = 0;
        break;
      case NativeSys::kSimTime:
        last_.rv = static_cast<int64_t>(now);
        break;
      case NativeSys::kWriteChan:
        sent.push_back(Sent{req.b, req.a, req.data});
        last_.rv = static_cast<int64_t>(req.data.size());
        break;
      case NativeSys::kAcceptChan:
        accepts.push_back(ChanCreate::Decode(req.data));
        last_.rv = 0;
        break;
      case NativeSys::kSetTimer:
        timers.emplace_back(req.a, req.b);
        last_.rv = 0;
        break;
      case NativeSys::kFindChan: {
        auto it = find_chan.find(req.a);
        last_.rv = it != find_chan.end() ? static_cast<int64_t>(it->second) : 0;
        break;
      }
      case NativeSys::kWhoAmI: {
        ByteWriter w;
        w.U64(who_pid.value);
        w.U32(who_cluster);
        w.U32(who_backup);
        last_.data = w.Take();
        last_.rv = 0;
        break;
      }
      default:
        AURAGEN_PANIC("harness: unsupported syscall");
    }
  }

  NativeProgram& program_;
  SyscallResult last_;
  bool first_ = true;
  bool pending_read_ = false;
  std::deque<Incoming> incoming_;
};

}  // namespace auragen

#endif  // AURAGEN_TESTS_PROGRAM_HARNESS_H_
