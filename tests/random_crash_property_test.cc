// Randomized whole-machine property test (DESIGN.md invariant 1 at scale):
// seeded-random fleets of communicating worker pairs with randomized
// placements, paces, and message counts run on 3 clusters; a crash is
// injected at a seeded-random instant in a seeded-random cluster. For every
// seed, all terminal output must equal the failure-free run of the same
// fleet, exactly once and in order.

#include <gtest/gtest.h>

#include <string>

#include "src/avm/assembler.h"
#include "src/base/rng.h"
#include "src/machine/machine.h"

namespace auragen {
namespace {

struct Fleet {
  struct Pair {
    ClusterId producer_cluster;
    ClusterId consumer_cluster;
    int items;
    int pace;
    uint32_t tty_line;
  };
  std::vector<Pair> pairs;
};

Fleet MakeFleet(uint64_t seed) {
  Rng rng(seed);
  Fleet fleet;
  int n = static_cast<int>(rng.Range(2, 4));
  for (int i = 0; i < n; ++i) {
    Fleet::Pair pair;
    pair.producer_cluster = static_cast<ClusterId>(rng.Below(3));
    pair.consumer_cluster = static_cast<ClusterId>(rng.Below(3));
    pair.items = static_cast<int>(rng.Range(6, 14));
    pair.pace = static_cast<int>(rng.Range(1000, 4000));
    pair.tty_line = static_cast<uint32_t>(i);
    fleet.pairs.push_back(pair);
  }
  return fleet;
}

Executable Producer(int index, int items, int pace) {
  return MustAssemble(R"(
start:
    li r1, name
    li r2, 6
    sys open
    mov r10, r0
    li r8, 1
loop:
    li r9, 0
pace:
    addi r9, r9, 1
    li r11, )" + std::to_string(pace) + R"(
    blt r9, r11, pace
    li r11, buf
    st r8, r11, 0
    mov r1, r10
    li r2, buf
    li r3, 4
    sys write
    addi r8, r8, 1
    li r11, )" + std::to_string(items + 1) + R"(
    blt r8, r11, loop
    exit 0
.data
name: .ascii "ch:r)" + std::to_string(index) + R"("
buf: .word 0
)");
}

// Consumer folds items into a running sum, printing one letter per item
// ('a' + value%26) so output order and content are both checked.
Executable Consumer(int index, int items) {
  return MustAssemble(R"(
start:
    li r1, name
    li r2, 6
    sys open
    mov r10, r0
    li r8, 0
loop:
    mov r1, r10
    li r2, buf
    li r3, 4
    sys read
    li r11, buf
    ld r2, r11, 0
    li r3, 26
    mod r2, r2, r3
    li r3, 97
    add r2, r2, r3
    li r11, out
    stb r2, r11, 0
    li r1, 2
    li r2, out
    li r3, 1
    sys write
    addi r8, r8, 1
    li r11, )" + std::to_string(items) + R"(
    blt r8, r11, loop
    exit 0
.data
name: .ascii "ch:r)" + std::to_string(index) + R"("
buf: .word 0
out: .byte 0
)");
}

// Runs the fleet; returns concatenated per-line outputs ("line0|line1|...").
std::string RunFleet(uint64_t seed, bool crash, ClusterId crash_cluster, SimTime crash_at,
                     bool* completed, uint64_t* duplicates) {
  Fleet fleet = MakeFleet(seed);
  MachineOptions options;
  options.config.num_clusters = 3;
  options.config.sync_reads_limit = 4;
  options.seed = seed;
  Machine machine(options);
  machine.Boot();
  for (size_t i = 0; i < fleet.pairs.size(); ++i) {
    const Fleet::Pair& pair = fleet.pairs[i];
    Machine::UserSpawnOptions popts;
    popts.backup_cluster = (pair.producer_cluster + 1) % 3;
    Machine::UserSpawnOptions copts;
    copts.backup_cluster = (pair.consumer_cluster + 1) % 3;
    copts.with_tty = true;
    copts.tty_line = pair.tty_line;
    machine.SpawnUserProgram(pair.producer_cluster,
                             Producer(static_cast<int>(i), pair.items, pair.pace), popts);
    machine.SpawnUserProgram(pair.consumer_cluster,
                             Consumer(static_cast<int>(i), pair.items), copts);
  }
  if (crash) {
    machine.CrashClusterAt(machine.Now() + crash_at, crash_cluster);
  }
  *completed = machine.RunUntilAllExited(600'000'000);
  machine.Settle();
  *duplicates = machine.TtyDuplicates();
  std::string out;
  for (size_t i = 0; i < fleet.pairs.size(); ++i) {
    out += machine.TtyOutput(static_cast<uint32_t>(i));
    out += '|';
  }
  return out;
}

class RandomCrashSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomCrashSweep, FleetOutputSurvivesRandomCrash) {
  uint64_t seed = GetParam();
  bool completed = false;
  uint64_t dup = 0;
  std::string expected = RunFleet(seed, false, 0, 0, &completed, &dup);
  ASSERT_TRUE(completed) << "failure-free run stalled, seed " << seed;
  ASSERT_EQ(dup, 0u);

  Rng rng(seed * 7919 + 1);
  ClusterId crash_cluster = static_cast<ClusterId>(rng.Below(3));
  SimTime crash_at = rng.Range(15'000, 120'000);

  std::string crashed = RunFleet(seed, true, crash_cluster, crash_at, &completed, &dup);
  ASSERT_TRUE(completed) << "crashed run stalled: seed " << seed << " cluster "
                         << crash_cluster << " at +" << crash_at;
  EXPECT_EQ(crashed, expected) << "seed " << seed << " cluster " << crash_cluster << " at +"
                               << crash_at;
  if (crash_cluster != 0) {  // cluster 0 hosts the tty server (§7.9 window)
    EXPECT_EQ(dup, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCrashSweep,
                         ::testing::Range<uint64_t>(1, 21));  // 20 seeded scenarios

}  // namespace
}  // namespace auragen
