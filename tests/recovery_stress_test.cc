// Stress tests for awkward recovery interleavings: sequential failures that
// land while earlier recoveries are still in flight, processes blocked on
// server replies when the server's cluster dies, and recovery paging racing
// a page-server takeover.

#include <gtest/gtest.h>

#include "src/avm/assembler.h"
#include "src/machine/machine.h"

namespace auragen {
namespace {

Executable Digits(int rounds, uint32_t spin) {
  return MustAssemble(R"(
start:
    li r8, 0
rounds:
    li r9, 0
spin:
    addi r9, r9, 1
    li r10, )" + std::to_string(spin) + R"(
    blt r9, r10, spin
    li r10, 48
    add r10, r10, r8
    li r11, digit
    stb r10, r11, 0
    li r1, 2
    li r2, digit
    li r3, 1
    sys write
    addi r8, r8, 1
    li r10, )" + std::to_string(rounds) + R"(
    blt r8, r10, rounds
    exit 7
.data
digit: .byte 0
)");
}

TEST(RecoveryStress, GettimeAcrossProcessServerTakeover) {
  // The worker blocks on gettime exactly while the process server's cluster
  // dies; the recovered PS must service the saved request (reply possibly
  // suppressed if already sent) and the worker completes.
  MachineOptions options;
  options.config.num_clusters = 2;
  Machine machine(options);
  machine.Boot();
  Executable prog = MustAssemble(R"(
start:
    li r8, 0
loop:
    sys gettime
    li r12, 0
    beq r0, r12, bad
    li r9, 0
spin:
    addi r9, r9, 1
    li r10, 3000
    blt r9, r10, spin
    addi r8, r8, 1
    li r10, 12
    blt r8, r10, loop
    exit 6
bad:
    exit 1
)");
  Machine::UserSpawnOptions opts;
  opts.backup_cluster = 0;
  Gpid pid = machine.SpawnUserProgram(1, prog, opts);
  // PS lives in cluster 0; kill it mid-run.
  machine.CrashClusterAt(machine.Now() + 25'000, 0);
  ASSERT_TRUE(machine.RunUntilAllExited(120'000'000));
  machine.Settle();
  EXPECT_EQ(machine.ExitStatus(pid), 6);
}

TEST(RecoveryStress, FileWriteAcrossFileServerTakeover) {
  MachineOptions options;
  options.config.num_clusters = 2;
  options.file_server.sync_every_ops = 4;
  Machine machine(options);
  machine.Boot();
  Executable prog = MustAssemble(R"(
start:
    li r1, fname
    li r2, 3
    sys open
    mov r10, r0
    li r8, 0
loop:
    mov r1, r10
    li r2, rec
    li r3, 32
    sys write          ; blocks for the server's ack
    li r12, 32
    bne r0, r12, bad
    addi r8, r8, 1
    li r11, 20
    blt r8, r11, loop
    ; read everything back and verify the length via EOF behaviour
    li r1, fname
    li r2, 3
    sys open
    mov r11, r0
    li r7, 0
count:
    mov r1, r11
    li r2, buf
    li r3, 64
    sys read
    li r12, 0
    beq r0, r12, done
    add r7, r7, r0
    jmp count
done:
    li r12, 640        ; 20 * 32 bytes
    bne r7, r12, bad
    exit 3
bad:
    exit 1
.data
fname: .ascii "wal"
rec: .space 32
buf: .space 64
)");
  Machine::UserSpawnOptions opts;
  opts.backup_cluster = 1;
  Gpid pid = machine.SpawnUserProgram(1, prog, opts);
  // The file server (and tty/ps) die mid write stream.
  machine.CrashClusterAt(machine.Now() + 40'000, 0);
  ASSERT_TRUE(machine.RunUntilAllExited(300'000'000));
  machine.Settle();
  EXPECT_EQ(machine.ExitStatus(pid), 3);
}

TEST(RecoveryStress, SecondCrashDuringRollforward) {
  // Fullback worker: cluster 2 dies; while the recovered primary in cluster
  // 1 is still rolling forward, cluster 1 dies too. The replacement backup
  // in cluster 0 must carry it home. (Sequential single failures, §3.1.)
  MachineOptions options;
  options.config.num_clusters = 3;
  Machine machine(options);
  machine.Boot();
  Machine::UserSpawnOptions opts;
  opts.with_tty = true;
  opts.mode = BackupMode::kFullback;
  opts.backup_cluster = 1;
  Gpid pid = machine.SpawnUserProgram(2, Digits(12, 8000), opts);
  machine.Run(60'000);
  machine.CrashCluster(2);
  // Barely into recovery: the detection alone takes ~12 ms; crash the new
  // primary while it is demand-paging its address space back in.
  machine.Run(14'000);
  machine.CrashCluster(1);
  ASSERT_TRUE(machine.RunUntilAllExited(300'000'000)) << "lost during nested recovery";
  machine.Settle();
  EXPECT_EQ(machine.ExitStatus(pid), 7);
  EXPECT_EQ(machine.TtyOutput(0), "0123456789:;");
  EXPECT_EQ(machine.TtyDuplicates(), 0u);
}

TEST(RecoveryStress, CrashWhilePageServerServesRecovery) {
  // Worker crashes (cluster 1, also the page server's home): the worker's
  // rollforward pages in from the page-server *backup* that took over in
  // cluster 0 — takeover and demand paging interleave.
  MachineOptions options;
  options.config.num_clusters = 2;
  Machine machine(options);
  machine.Boot();
  Machine::UserSpawnOptions opts;
  opts.with_tty = true;
  opts.backup_cluster = 0;
  Gpid pid = machine.SpawnUserProgram(1, Digits(10, 6000), opts);
  machine.Run(60'000);
  ASSERT_GT(machine.metrics().syncs, 0u);
  machine.CrashCluster(1);
  ASSERT_TRUE(machine.RunUntilAllExited(120'000'000));
  machine.Settle();
  EXPECT_EQ(machine.ExitStatus(pid), 7);
  EXPECT_EQ(machine.TtyOutput(0), "0123456789");
  EXPECT_GT(machine.metrics().page_faults_served, 0u);
}

TEST(RecoveryStress, ManyProcessesRecoverTogether) {
  MachineOptions options;
  options.config.num_clusters = 3;
  Machine machine(options);
  machine.Boot();
  std::vector<Gpid> pids;
  for (int i = 0; i < 12; ++i) {
    Machine::UserSpawnOptions opts;
    opts.with_tty = true;
    opts.tty_line = static_cast<uint32_t>(i);
    opts.backup_cluster = static_cast<ClusterId>(i % 2);  // 0 or 1
    pids.push_back(machine.SpawnUserProgram(2, Digits(8, 3000 + 500 * i), opts));
  }
  machine.Run(50'000);
  machine.CrashCluster(2);
  ASSERT_TRUE(machine.RunUntilAllExited(600'000'000));
  machine.Settle();
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(machine.ExitStatus(pids[i]), 7) << "worker " << i;
    EXPECT_EQ(machine.TtyOutput(static_cast<uint32_t>(i)), "01234567") << "worker " << i;
  }
  EXPECT_EQ(machine.TtyDuplicates(), 0u);
  EXPECT_GE(machine.metrics().takeovers, 12u);
}

}  // namespace
}  // namespace auragen
