// Crash-handling and rollforward-recovery tests (§6, §7.10) — the paper's
// central claim: every process survives a single cluster failure, with
// externally visible output unchanged.

#include <gtest/gtest.h>

#include "src/avm/assembler.h"
#include "src/machine/machine.h"

namespace auragen {
namespace {

MachineOptions TwoClusters() {
  MachineOptions options;
  options.config.num_clusters = 2;
  return options;
}

// Worker: ten rounds of {spin, print digit to tty}; exits 7.
Executable DigitWorker(uint32_t spin = 6000) {
  std::string src = R"(
start:
    li r8, 0           ; round counter
rounds:
    li r9, 0
spin:
    addi r9, r9, 1
    li r10, )" + std::to_string(spin) + R"(
    blt r9, r10, spin
    li r10, 48
    add r10, r10, r8   ; '0' + round
    li r11, digit
    stb r10, r11, 0
    li r1, 2
    li r2, digit
    li r3, 1
    sys write
    addi r8, r8, 1
    li r10, 10
    blt r8, r10, rounds
    exit 7
.data
digit: .byte 0
)";
  return MustAssemble(src);
}

TEST(Recovery, WorkerSurvivesClusterCrash) {
  Machine machine(TwoClusters());
  machine.Boot();
  Machine::UserSpawnOptions opts;
  opts.with_tty = true;
  // Worker in cluster 1, backup in 0; servers in 0 are unaffected by the
  // crash of cluster 1.
  opts.backup_cluster = 0;
  Gpid pid = machine.SpawnUserProgram(1, DigitWorker(), opts);

  // Let it run long enough to sync at least once, then kill its cluster.
  machine.Run(60'000);
  EXPECT_GT(machine.metrics().syncs, 0u);
  machine.CrashCluster(1);

  ASSERT_TRUE(machine.RunUntilAllExited(60'000'000)) << "worker never finished";
  machine.Settle();
  EXPECT_EQ(machine.ExitStatus(pid), 7);
  EXPECT_EQ(machine.TtyOutput(0), "0123456789");
  // The tty server did not crash, so §5.4 suppression alone must have
  // prevented any duplicate: the raw transcript is clean too.
  EXPECT_EQ(machine.TtyDuplicates(), 0u);
  EXPECT_GE(machine.metrics().takeovers, 1u);
}

TEST(Recovery, OutputIdenticalToFailureFreeRun) {
  std::string no_crash_output;
  {
    Machine machine(TwoClusters());
    machine.Boot();
    Machine::UserSpawnOptions opts;
    opts.with_tty = true;
    opts.backup_cluster = 0;
    machine.SpawnUserProgram(1, DigitWorker(), opts);
    ASSERT_TRUE(machine.RunUntilAllExited(60'000'000));
    machine.Settle();
    no_crash_output = machine.TtyOutput(0);
  }
  {
    Machine machine(TwoClusters());
    machine.Boot();
    Machine::UserSpawnOptions opts;
    opts.with_tty = true;
    opts.backup_cluster = 0;
    machine.SpawnUserProgram(1, DigitWorker(), opts);
    machine.Run(45'000);
    machine.CrashCluster(1);
    ASSERT_TRUE(machine.RunUntilAllExited(60'000'000));
    machine.Settle();
    EXPECT_EQ(machine.TtyOutput(0), no_crash_output);
  }
}

TEST(Recovery, PreFirstSyncCrashRestartsFromImage) {
  MachineOptions options = TwoClusters();
  // Make time-triggered syncs rare so the crash precedes the first one.
  options.config.sync_time_limit_us = 10'000'000;
  Machine machine(options);
  machine.Boot();
  Machine::UserSpawnOptions opts;
  opts.with_tty = true;
  opts.backup_cluster = 0;
  Gpid pid = machine.SpawnUserProgram(1, DigitWorker(2000), opts);
  machine.Run(25'000);  // a few digits out, no sync yet
  EXPECT_EQ(machine.metrics().syncs, 0u);
  machine.CrashCluster(1);
  ASSERT_TRUE(machine.RunUntilAllExited(60'000'000));
  machine.Settle();
  EXPECT_EQ(machine.ExitStatus(pid), 7);
  // Restart-from-image recomputes everything; §5.4 suppression still
  // guarantees single delivery of the already-sent digits.
  EXPECT_EQ(machine.TtyOutput(0), "0123456789");
  EXPECT_EQ(machine.TtyDuplicates(), 0u);
  EXPECT_GT(machine.metrics().sends_suppressed, 0u);
}

TEST(Recovery, ServerClusterCrashMovesServersAndKeepsOutput) {
  Machine machine(TwoClusters());
  machine.Boot();
  Machine::UserSpawnOptions opts;
  opts.with_tty = true;
  opts.backup_cluster = 0;
  // Worker lives in cluster 1; every server primary lives in cluster 0
  // except the page server. Crashing cluster 0 forces fs/ps/tty takeovers.
  Gpid pid = machine.SpawnUserProgram(1, DigitWorker(), opts);
  machine.Run(60'000);
  machine.CrashCluster(0);
  ASSERT_TRUE(machine.RunUntilAllExited(60'000'000)) << "worker stalled after server crash";
  machine.Settle();
  EXPECT_EQ(machine.ExitStatus(pid), 7);
  // The exactly-once view must be intact; raw duplicates are allowed only
  // in the window since the tty server's last explicit sync (§7.9).
  EXPECT_EQ(machine.TtyOutput(0), "0123456789");
  EXPECT_LE(machine.TtyDuplicates(), 8u);
  EXPECT_EQ(machine.proc_server_addr().primary, 1u);
  EXPECT_EQ(machine.tty_server_addr().primary, 1u);
  EXPECT_EQ(machine.file_server_addr().primary, 1u);
}

TEST(Recovery, PingPongPairSurvivesCrash) {
  Machine machine(TwoClusters());
  machine.Boot();
  // Two processes bounce a counter 20 times over a paired channel; the
  // responder prints the final value.
  Executable pinger = MustAssemble(R"(
start:
    li r1, name
    li r2, 7
    sys open
    mov r10, r0
    li r8, 0           ; counter
loop:
    li r11, val
    st r8, r11, 0
    mov r1, r10
    li r2, val
    li r3, 4
    sys write
    mov r1, r10
    li r2, val
    li r3, 4
    sys read
    li r11, val
    ld r8, r11, 0
    li r12, 20
    blt r8, r12, loop
    exit 0
.data
name: .ascii "ch:pp"
val: .word 0
)");
  Executable ponger = MustAssemble(R"(
start:
    li r1, name
    li r2, 7
    sys open
    mov r10, r0
loop:
    mov r1, r10
    li r2, val
    li r3, 4
    sys read
    li r12, 0
    beq r0, r12, done   ; EOF: peer exited
    li r11, val
    ld r8, r11, 0
    addi r8, r8, 1
    li r11, val
    st r8, r11, 0
    mov r1, r10
    li r2, val
    li r3, 4
    sys write
    li r12, 20
    blt r8, r12, loop
done:
    ; print 'A' + (count - 20) == 'A'
    li r11, val
    ld r8, r11, 0
    addi r8, r8, 45
    li r11, out
    stb r8, r11, 0
    li r1, 2
    li r2, out
    li r3, 1
    sys write
    exit 0
.data
name: .ascii "ch:pp"
val: .word 0
out: .byte 0
)");
  Machine::UserSpawnOptions popts;
  popts.with_tty = true;
  popts.backup_cluster = 0;
  Machine::UserSpawnOptions qopts;
  qopts.backup_cluster = 1;
  Gpid ping = machine.SpawnUserProgram(0, pinger, qopts);
  Gpid pong = machine.SpawnUserProgram(1, ponger, popts);

  machine.Run(40'000);
  machine.CrashCluster(1);  // kills the ponger (and the page server primary)
  ASSERT_TRUE(machine.RunUntilAllExited(60'000'000));
  machine.Settle();
  EXPECT_EQ(machine.ExitStatus(ping), 0);
  EXPECT_EQ(machine.ExitStatus(pong), 0);
  EXPECT_EQ(machine.TtyOutput(0), "A");  // 20 + 45 = 'A'
}

TEST(Recovery, DeterministicAcrossSeedsAndCrashPoints) {
  // Property sweep: for several crash instants, the deduped output always
  // equals the failure-free run (DESIGN.md invariant 1).
  std::string expected;
  {
    Machine machine(TwoClusters());
    machine.Boot();
    Machine::UserSpawnOptions opts;
    opts.with_tty = true;
    opts.backup_cluster = 0;
    machine.SpawnUserProgram(1, DigitWorker(), opts);
    ASSERT_TRUE(machine.RunUntilAllExited(60'000'000));
    machine.Settle();
    expected = machine.TtyOutput(0);
  }
  ASSERT_EQ(expected, "0123456789");
  for (SimTime crash_at : {25'000u, 35'000u, 50'000u, 65'000u, 80'000u}) {
    Machine machine(TwoClusters());
    machine.Boot();
    Machine::UserSpawnOptions opts;
    opts.with_tty = true;
    opts.backup_cluster = 0;
    Gpid pid = machine.SpawnUserProgram(1, DigitWorker(), opts);
    machine.CrashClusterAt(machine.Now() + crash_at, 1);
    ASSERT_TRUE(machine.RunUntilAllExited(90'000'000)) << "crash at +" << crash_at;
    machine.Settle();
    EXPECT_EQ(machine.ExitStatus(pid), 7) << "crash at +" << crash_at;
    EXPECT_EQ(machine.TtyOutput(0), expected) << "crash at +" << crash_at;
    EXPECT_EQ(machine.TtyDuplicates(), 0u) << "crash at +" << crash_at;
  }
}

}  // namespace
}  // namespace auragen
