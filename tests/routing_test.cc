// Unit tests for the routing table (§7.4.1) and the NativeBody page-diff
// machinery that system servers sync through.

#include <gtest/gtest.h>

#include "src/core/routing.h"
#include "src/kernel/native_body.h"

namespace auragen {
namespace {

const Gpid kA = Gpid::Make(0, 10);
const Gpid kB = Gpid::Make(1, 11);
const ChannelId kCh1{100};
const ChannelId kCh2{200};

TEST(RoutingTable, PrimaryAndBackupEntriesAreDistinct) {
  RoutingTable table;
  RoutingEntry& primary = table.Create(kCh1, kA, /*backup=*/false);
  RoutingEntry& backup = table.Create(kCh1, kA, /*backup=*/true);
  primary.reads_since_sync = 5;
  backup.writes_since_sync = 3;
  EXPECT_EQ(table.Find(kCh1, kA, false)->reads_since_sync, 5u);
  EXPECT_EQ(table.Find(kCh1, kA, true)->writes_since_sync, 3u);
  EXPECT_EQ(table.size(), 2u);
}

TEST(RoutingTable, BothEndsOfAChannelCanShareACluster) {
  RoutingTable table;
  table.Create(kCh1, kA, false);
  table.Create(kCh1, kB, false);
  EXPECT_NE(table.Find(kCh1, kA, false), table.Find(kCh1, kB, false));
}

TEST(RoutingTable, FindMissReturnsNull) {
  RoutingTable table;
  EXPECT_EQ(table.Find(kCh1, kA, false), nullptr);
  table.Create(kCh1, kA, false);
  EXPECT_EQ(table.Find(kCh2, kA, false), nullptr);
  EXPECT_EQ(table.Find(kCh1, kB, false), nullptr);
  EXPECT_EQ(table.Find(kCh1, kA, true), nullptr);
}

TEST(RoutingTable, EntriesOfFiltersByOwnerAndRole) {
  RoutingTable table;
  table.Create(kCh1, kA, false);
  table.Create(kCh2, kA, false);
  table.Create(kCh1, kB, false);
  table.Create(kCh2, kA, true);
  EXPECT_EQ(table.EntriesOf(kA, false).size(), 2u);
  EXPECT_EQ(table.EntriesOf(kA, true).size(), 1u);
  EXPECT_EQ(table.EntriesOf(kB, false).size(), 1u);
}

TEST(RoutingTable, RemoveAllOfErasesOnlyTheRole) {
  RoutingTable table;
  table.Create(kCh1, kA, false);
  table.Create(kCh2, kA, false);
  table.Create(kCh1, kA, true);
  table.RemoveAllOf(kA, false);
  EXPECT_EQ(table.EntriesOf(kA, false).size(), 0u);
  EXPECT_EQ(table.EntriesOf(kA, true).size(), 1u);
}

TEST(RoutingTable, CreateReplacesStaleEntry) {
  RoutingTable table;
  RoutingEntry& e1 = table.Create(kCh1, kA, false);
  e1.queue.push_back(QueuedMsg{});
  RoutingEntry& e2 = table.Create(kCh1, kA, false);
  EXPECT_TRUE(e2.queue.empty());
  EXPECT_EQ(table.size(), 1u);
}

TEST(RoutingTable, ForEachVisitsEverything) {
  RoutingTable table;
  table.Create(kCh1, kA, false);
  table.Create(kCh2, kB, true);
  int visited = 0;
  table.ForEach([&](RoutingEntry&) { ++visited; });
  EXPECT_EQ(visited, 2);
}

// ----------------------------- NativeBody page-diff sync (system servers)

class CounterProgram : public NativeProgram {
 public:
  SyscallRequest Next(const SyscallResult&, bool) override {
    ++counter_;
    SyscallRequest req;
    req.num = Sys::kRead;
    req.a = kAnyChannel;
    return req;
  }
  void SerializeState(ByteWriter& w) const override {
    w.U64(counter_);
    w.Blob(blob_);
  }
  void RestoreState(ByteReader& r) override {
    counter_ = r.U64();
    blob_ = r.Blob();
  }
  uint64_t counter_ = 0;
  Bytes blob_;
};

TEST(NativeBodyPaging, DirtyPagesTrackStateChanges) {
  auto program = std::make_unique<CounterProgram>();
  CounterProgram* p = program.get();
  p->counter_ = 7;  // all-zero state would (correctly) ship nothing
  NativeBody body(std::move(program), /*paged_ft=*/true);
  std::vector<PageNum> dirty = body.DirtyPages();
  EXPECT_FALSE(dirty.empty());
  for (PageNum page : dirty) {
    (void)body.PageContent(page);
  }
  body.ClearDirty();
  EXPECT_TRUE(body.DirtyPages().empty());

  // A state change re-dirties exactly the affected chunk(s).
  p->counter_ = 999;
  dirty = body.DirtyPages();
  ASSERT_EQ(dirty.size(), 1u);
  EXPECT_EQ(dirty[0], 0u);
}

TEST(NativeBodyPaging, GrowthAddsChunks) {
  auto program = std::make_unique<CounterProgram>();
  CounterProgram* p = program.get();
  NativeBody body(std::move(program), /*paged_ft=*/true);
  body.DirtyPages();
  body.ClearDirty();
  p->blob_ = Bytes(3 * kAvmPageBytes, 0xEE);
  std::vector<PageNum> dirty = body.DirtyPages();
  EXPECT_GE(dirty.size(), 3u);
}

TEST(NativeBodyPaging, RestoreRebuildsFromInstalledChunks) {
  auto program = std::make_unique<CounterProgram>();
  CounterProgram* p = program.get();
  NativeBody body(std::move(program), /*paged_ft=*/true);
  p->counter_ = 1234;
  p->blob_ = Bytes(100, 0x1);
  std::vector<PageNum> dirty = body.DirtyPages();
  std::vector<Bytes> chunks;
  for (PageNum page : dirty) {
    chunks.push_back(body.PageContent(page));
  }
  body.ClearDirty();
  Bytes context = body.CaptureContext();

  auto program2 = std::make_unique<CounterProgram>();
  CounterProgram* p2 = program2.get();
  NativeBody restored(std::move(program2), /*paged_ft=*/true);
  restored.RestoreContext(context);
  restored.EvictAllPages();
  EXPECT_TRUE(restored.NeedsServerPaging());
  // The first Run faults each chunk in order.
  for (size_t i = 0; i < chunks.size(); ++i) {
    BodyRun run = restored.Run(100);
    ASSERT_EQ(run.kind, BodyRun::Kind::kPageFault);
    EXPECT_EQ(run.fault_page, i);
    restored.InstallPage(run.fault_page, /*known=*/true, chunks[i]);
  }
  BodyRun run = restored.Run(100);
  EXPECT_EQ(run.kind, BodyRun::Kind::kSyscall);
  EXPECT_EQ(p2->counter_, 1235u);  // restored 1234, one Next() since
  EXPECT_EQ(p2->blob_, Bytes(100, 0x1));
}

TEST(NativeBodyPaging, PeripheralBodiesReportNoDirtyPages) {
  NativeBody body(std::make_unique<CounterProgram>(), /*paged_ft=*/false);
  EXPECT_TRUE(body.DirtyPages().empty());
}

}  // namespace
}  // namespace auragen
