// Scale tests across the Auragen 4000's configuration range (§7.1: "2 to 32
// clusters"): boots larger machines, spreads communicating work across
// every cluster, and injects a failure far from the servers.

#include <gtest/gtest.h>

#include "src/avm/assembler.h"
#include "src/machine/machine.h"

namespace auragen {
namespace {

Executable Hopper(int index, int hops) {
  // Opens ch:s<i> (reads) and ch:s<i+1> (writes): a token ring segment.
  return MustAssemble(R"(
start:
    li r1, in_name
    li r2, )" + std::to_string(4 + std::to_string(index).size()) + R"(
    sys open
    mov r10, r0
    li r1, out_name
    li r2, )" + std::to_string(4 + std::to_string(index + 1).size()) + R"(
    sys open
    mov r11, r0
    li r8, 0
loop:
    mov r1, r10
    li r2, buf
    li r3, 4
    sys read
    li r13, buf
    ld r2, r13, 0
    addi r2, r2, 1
    st r2, r13, 0
    mov r1, r11
    li r2, buf
    li r3, 4
    sys write
    addi r8, r8, 1
    li r12, )" + std::to_string(hops) + R"(
    blt r8, r12, loop
    exit 0
.data
in_name: .ascii "ch:s)" + std::to_string(index) + R"("
out_name: .ascii "ch:s)" + std::to_string(index + 1) + R"("
buf: .word 0
)");
}

Executable RingHead(int stages, int hops) {
  // Injects a zero token into ch:s0, reads the result from ch:s<stages>,
  // prints it as two decimal digits, repeats `hops` times.
  return MustAssemble(R"(
start:
    li r1, out_name
    li r2, 5
    sys open
    mov r10, r0
    li r1, in_name
    li r2, )" + std::to_string(4 + std::to_string(stages).size()) + R"(
    sys open
    mov r11, r0
    li r8, 0
loop:
    li r13, buf
    li r2, 0
    st r2, r13, 0
    mov r1, r10
    li r2, buf
    li r3, 4
    sys write
    mov r1, r11
    li r2, buf
    li r3, 4
    sys read
    addi r8, r8, 1
    li r12, )" + std::to_string(hops) + R"(
    blt r8, r12, loop
    ; print the final token value (= stages) as 2 digits
    li r13, buf
    ld r2, r13, 0
    li r3, 10
    div r4, r2, r3
    li r5, 48
    add r4, r4, r5
    li r13, out
    stb r4, r13, 0
    li r13, buf
    ld r2, r13, 0
    li r3, 10
    mod r4, r2, r3
    add r4, r4, r5
    li r13, out
    stb r4, r13, 1
    li r1, 2
    li r2, out
    li r3, 2
    sys write
    exit 0
.data
out_name: .ascii "ch:s0"
in_name: .ascii "ch:s)" + std::to_string(stages) + R"("
buf: .word 0
out: .space 4
)");
}

TEST(Scale, SixteenClusterRingWithCrash) {
  MachineOptions options;
  options.config.num_clusters = 16;
  Machine machine(options);
  machine.Boot();

  const int stages = 14;
  const int hops = 3;
  for (int i = 0; i < stages; ++i) {
    Machine::UserSpawnOptions opts;
    ClusterId home = static_cast<ClusterId>(2 + (i % 14));
    opts.backup_cluster = (home + 1) % 16;
    machine.SpawnUserProgram(home, Hopper(i, hops), opts);
  }
  Machine::UserSpawnOptions head_opts;
  head_opts.with_tty = true;
  head_opts.backup_cluster = 3;
  Gpid head = machine.SpawnUserProgram(2, RingHead(stages, hops), head_opts);

  // Kill a mid-ring cluster once the ring is warm.
  machine.Run(100'000);
  machine.CrashCluster(7);

  ASSERT_TRUE(machine.RunUntilAllExited(3'000'000'000ull)) << "ring stalled";
  machine.Settle();
  EXPECT_EQ(machine.ExitStatus(head), 0);
  EXPECT_EQ(machine.TtyOutput(0), "14");  // token incremented once per stage
  EXPECT_EQ(machine.TtyDuplicates(), 0u);
}

TEST(Scale, ThirtyTwoClustersBootAndRun) {
  MachineOptions options;
  options.config.num_clusters = 32;
  Machine machine(options);
  machine.Boot();
  std::vector<Gpid> pids;
  Executable job = MustAssemble(R"(
start:
    li r9, 0
spin:
    addi r9, r9, 1
    li r11, 20000
    blt r9, r11, spin
    sys getpid
    exit 0
)");
  for (ClusterId c = 0; c < 32; ++c) {
    Machine::UserSpawnOptions opts;
    opts.backup_cluster = (c + 1) % 32;
    pids.push_back(machine.SpawnUserProgram(c, job, opts));
  }
  ASSERT_TRUE(machine.RunUntilAllExited(3'000'000'000ull));
  machine.Settle();
  for (Gpid pid : pids) {
    EXPECT_EQ(machine.ExitStatus(pid), 0);
  }
}

}  // namespace
}  // namespace auragen
