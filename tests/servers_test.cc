// Unit tests for the server state machines, driven through ProgramHarness
// (no machine, no kernels): the page server's copy-on-sync accounts and
// op-log replay, the file server's shadow-block filesystem and channel
// pairing, the tty server's sequencing and bindings, and the process
// server's time/alarm/signal hub.

#include <gtest/gtest.h>

#include "src/paging/page_server.h"
#include "src/servers/file_server.h"
#include "src/servers/process_server.h"
#include "src/servers/tty_server.h"
#include "tests/program_harness.h"

namespace auragen {
namespace {

const Gpid kUser = Gpid::Make(1, 42);
constexpr uint64_t kChan = 0x1000000000007ull;

// ------------------------------------------------------------- page server

Bytes PageWriteMsg(Gpid pid, PageNum page, uint8_t fill) {
  PageWriteBody body;
  body.pid = pid;
  body.page = page;
  body.content = Bytes(kAvmPageBytes, fill);
  return body.Encode();
}

Bytes SyncMsg(Gpid pid) {
  SyncRecord record;
  record.pid = pid;
  record.sync_seq = 1;
  return record.Encode();
}

TEST(PageServer, WriteGoesToPrimaryAccountOnly) {
  PageServerProgram ps(PageServerOptions{});
  ProgramHarness h(ps);
  h.Push(kChan, kUser, kBindPageChannel, MsgKind::kPageWrite, PageWriteMsg(kUser, 3, 0xAA));
  h.Drain();
  EXPECT_TRUE(ps.PrimaryHasPage(kUser, 3));
  EXPECT_FALSE(ps.BackupHasPage(kUser, 3));
  EXPECT_EQ(h.disk_writes, 1u);
}

TEST(PageServer, SyncCopiesAccountSharingBlocks) {
  PageServerProgram ps(PageServerOptions{});
  ProgramHarness h(ps);
  h.Push(kChan, kUser, kBindPageChannel, MsgKind::kPageWrite, PageWriteMsg(kUser, 3, 0xAA));
  h.Push(kChan, kUser, kBindPageChannel, MsgKind::kSync, SyncMsg(kUser));
  h.Drain();
  EXPECT_TRUE(ps.BackupHasPage(kUser, 3));
  // §7.8: "After a sync, only one copy of each page will exist" — one block
  // backs both accounts.
  EXPECT_EQ(ps.blocks_in_use(), 1u);
  // A newer version splits the copies (two blocks), next sync re-merges.
  h.Push(kChan, kUser, kBindPageChannel, MsgKind::kPageWrite, PageWriteMsg(kUser, 3, 0xBB));
  h.Deliver();
  EXPECT_EQ(ps.blocks_in_use(), 2u);
  h.Push(kChan, kUser, kBindPageChannel, MsgKind::kSync, SyncMsg(kUser));
  h.Deliver();
  EXPECT_EQ(ps.blocks_in_use(), 1u);
}

TEST(PageServer, RequestServedFromBackupAccount) {
  PageServerProgram ps(PageServerOptions{});
  ProgramHarness h(ps);
  h.Push(kChan, kUser, kBindPageChannel, MsgKind::kPageWrite, PageWriteMsg(kUser, 5, 0x11));
  h.Push(kChan, kUser, kBindPageChannel, MsgKind::kSync, SyncMsg(kUser));
  // Newer un-synced version must NOT be served to a recovering backup.
  h.Push(kChan, kUser, kBindPageChannel, MsgKind::kPageWrite, PageWriteMsg(kUser, 5, 0x22));
  PageRequestBody req;
  req.pid = kUser;
  req.page = 5;
  req.cookie = 77;
  h.Push(kChan, kUser, kBindPageChannel, MsgKind::kPageRequest, req.Encode());
  h.Drain();
  ASSERT_EQ(h.sent.size(), 1u);
  EXPECT_EQ(h.sent[0].kind, 3u);  // kPageReply
  PageReplyBody reply = PageReplyBody::Decode(h.sent[0].payload);
  EXPECT_TRUE(reply.known);
  EXPECT_EQ(reply.cookie, 77u);
  ASSERT_FALSE(reply.content.empty());
  EXPECT_EQ(reply.content[0], 0x11);  // last-sync version, not 0x22
}

TEST(PageServer, UnknownPageRepliesZeroFill) {
  PageServerProgram ps(PageServerOptions{});
  ProgramHarness h(ps);
  PageRequestBody req;
  req.pid = kUser;
  req.page = 9;
  req.cookie = 5;
  h.Push(kChan, kUser, kBindPageChannel, MsgKind::kPageRequest, req.Encode());
  h.Drain();
  ASSERT_EQ(h.sent.size(), 1u);
  PageReplyBody reply = PageReplyBody::Decode(h.sent[0].payload);
  EXPECT_FALSE(reply.known);
}

TEST(PageServer, ServerSyncOpsReplayRebuildsMirror) {
  PageServerOptions options;
  options.sync_every_ops = 3;
  PageServerProgram primary(options);
  ProgramHarness h(primary);
  h.Push(kChan, kUser, kBindPageChannel, MsgKind::kPageWrite, PageWriteMsg(kUser, 1, 1));
  h.Push(kChan, kUser, kBindPageChannel, MsgKind::kPageWrite, PageWriteMsg(kUser, 2, 2));
  h.Push(kChan, kUser, kBindPageChannel, MsgKind::kSync, SyncMsg(kUser));
  h.Drain();
  ASSERT_EQ(h.server_syncs.size(), 1u);

  // Backup applies the op log and mirrors the accounts.
  PageServerProgram backup(options);
  ByteReader r(h.server_syncs[0]);
  ServerSyncPrefix::Deserialize(r);  // trim prefix consumed by the kernel
  backup.ApplyServerSync(r);
  EXPECT_TRUE(backup.PrimaryHasPage(kUser, 1));
  EXPECT_TRUE(backup.BackupHasPage(kUser, 2));
  EXPECT_EQ(backup.blocks_in_use(), primary.blocks_in_use());
}

TEST(PageServer, StateSerializationRoundTrip) {
  PageServerProgram ps(PageServerOptions{});
  ProgramHarness h(ps);
  h.Push(kChan, kUser, kBindPageChannel, MsgKind::kPageWrite, PageWriteMsg(kUser, 1, 1));
  h.Push(kChan, kUser, kBindPageChannel, MsgKind::kSync, SyncMsg(kUser));
  h.Drain();
  ByteWriter w;
  ps.SerializeState(w);
  PageServerProgram restored(PageServerOptions{});
  ByteReader r(w.bytes());
  restored.RestoreState(r);
  EXPECT_TRUE(restored.BackupHasPage(kUser, 1));
  ByteWriter w2;
  restored.SerializeState(w2);
  EXPECT_EQ(w.bytes(), w2.bytes());
}

// ------------------------------------------------------------- file server

Bytes OpenMsg(const std::string& name, uint64_t cookie = 1) {
  OpenRequest open;
  open.cookie = cookie;
  open.name = name;
  open.opener = kUser;
  open.opener_cluster = 1;
  open.opener_backup = 0;
  return open.Encode();
}

struct FsFixture {
  FileServerProgram fs{FileServerOptions{}};
  ProgramHarness h{fs};
  FsFixture() { h.Drain(); }  // boot: whoami + format

  // Opens `name`, returns the channel id from the reply.
  uint64_t Open(const std::string& name) {
    size_t before = h.sent.size();
    h.Push(kChan, kUser, kBindFsChannel, MsgKind::kUser, OpenMsg(name));
    h.Deliver();
    AURAGEN_CHECK(h.sent.size() == before + 1);
    OpenReplyBody reply = OpenReplyBody::Decode(h.sent.back().payload);
    AURAGEN_CHECK(reply.status == 0);
    return reply.channel.value;
  }

  void Write(uint64_t chan, const Bytes& data) {
    h.Push(chan, kUser, 0, MsgKind::kUser, EncodeTaggedBlob(ReqTag::kFileWrite, data));
    h.Deliver();
  }

  Bytes Read(uint64_t chan, uint64_t max) {
    size_t before = h.sent.size();
    h.Push(chan, kUser, 0, MsgKind::kUser, EncodeTaggedU64(ReqTag::kFileRead, max));
    h.Deliver();
    AURAGEN_CHECK(h.sent.size() == before + 1);
    ByteReader r(h.sent.back().payload);
    AURAGEN_CHECK(static_cast<ReqTag>(r.U8()) == ReqTag::kData);
    return r.Blob();
  }
};

TEST(FileServer, FormatsVirginDiskWithSuperblock) {
  FsFixture f;
  EXPECT_GE(f.h.disk_writes, 1u);
  EXPECT_TRUE(f.h.disk.count(1) != 0);  // epoch 1 commits to slot 1
}

TEST(FileServer, OpenCreatesFileAndAcceptsChannel) {
  FsFixture f;
  uint64_t chan = f.Open("alpha.txt");
  EXPECT_NE(chan, 0u);
  EXPECT_TRUE(f.fs.HasFile("alpha.txt"));
  ASSERT_EQ(f.h.accepts.size(), 1u);
  EXPECT_EQ(f.h.accepts[0].channel.value, chan);
  EXPECT_EQ(f.h.accepts[0].peer_pid, kUser);
}

TEST(FileServer, WriteThenReadBack) {
  FsFixture f;
  uint64_t chan = f.Open("data.bin");
  Bytes payload(300, 0x5A);  // spans a block boundary
  f.Write(chan, payload);
  EXPECT_EQ(f.fs.FileSize("data.bin"), 300u);
  uint64_t chan2 = f.Open("data.bin");
  Bytes back = f.Read(chan2, 1024);
  EXPECT_EQ(back, payload);
}

TEST(FileServer, AppendsAccumulateAcrossTailBlocks) {
  FsFixture f;
  uint64_t chan = f.Open("log");
  for (int i = 0; i < 5; ++i) {
    f.Write(chan, Bytes(200, static_cast<uint8_t>('a' + i)));
  }
  EXPECT_EQ(f.fs.FileSize("log"), 1000u);
  uint64_t chan2 = f.Open("log");
  Bytes back = f.Read(chan2, 2000);
  ASSERT_EQ(back.size(), 1000u);
  EXPECT_EQ(back[0], 'a');
  EXPECT_EQ(back[399], 'b');
  EXPECT_EQ(back[999], 'e');
}

TEST(FileServer, SequentialReadsAdvanceOffset) {
  FsFixture f;
  uint64_t chan = f.Open("seq");
  Bytes data;
  for (int i = 0; i < 100; ++i) {
    data.push_back(static_cast<uint8_t>(i));
  }
  f.Write(chan, data);
  uint64_t rchan = f.Open("seq");
  Bytes first = f.Read(rchan, 40);
  Bytes second = f.Read(rchan, 40);
  Bytes third = f.Read(rchan, 40);
  Bytes eof = f.Read(rchan, 40);
  EXPECT_EQ(first.size(), 40u);
  EXPECT_EQ(second[0], 40);
  EXPECT_EQ(third.size(), 20u);
  EXPECT_TRUE(eof.empty());
}

TEST(FileServer, ChannelPairingRepliesToBothOpeners) {
  FsFixture f;
  f.h.Push(kChan, kUser, kBindFsChannel, MsgKind::kUser, OpenMsg("ch:duo", 11));
  f.h.Deliver();
  EXPECT_TRUE(f.h.sent.empty());  // first opener waits
  Gpid other = Gpid::Make(0, 17);
  OpenRequest open;
  open.cookie = 22;
  open.name = "ch:duo";
  open.opener = other;
  open.opener_cluster = 0;
  open.opener_backup = 1;
  f.h.Push(kChan + 1, other, kBindFsChannel, MsgKind::kUser, open.Encode());
  f.h.Deliver();
  ASSERT_EQ(f.h.sent.size(), 2u);
  OpenReplyBody to_first = OpenReplyBody::Decode(f.h.sent[0].payload);
  OpenReplyBody to_second = OpenReplyBody::Decode(f.h.sent[1].payload);
  EXPECT_EQ(f.h.sent[0].channel, kChan);      // replies on each control channel
  EXPECT_EQ(f.h.sent[1].channel, kChan + 1);
  EXPECT_EQ(to_first.channel, to_second.channel);  // one shared channel
  EXPECT_EQ(to_first.peer_pid, other);
  EXPECT_EQ(to_second.peer_pid, kUser);
  EXPECT_EQ(to_first.request_cookie, 11u);
  EXPECT_EQ(to_second.request_cookie, 22u);
}

TEST(FileServer, ShadowCommitPreservesOldStateUntilSuperblockFlips) {
  FileServerOptions options;
  options.sync_every_ops = 2;
  FileServerProgram fs(options);
  ProgramHarness h(fs);
  h.Drain();
  // Trigger enough ops for a commit.
  h.Push(kChan, kUser, kBindFsChannel, MsgKind::kUser, OpenMsg("f"));
  h.Deliver();
  OpenReplyBody reply = OpenReplyBody::Decode(h.sent.back().payload);
  h.Push(reply.channel.value, kUser, 0, MsgKind::kUser,
         EncodeTaggedBlob(ReqTag::kFileWrite, Bytes(10, 7)));
  h.Deliver();
  EXPECT_GE(fs.commits(), 2u);  // format + at least one shadow commit
  ASSERT_GE(h.server_syncs.size(), 1u);

  // A fresh instance booted from the same disk + runtime opaque reads the
  // file back — the §7.9 dual-ported-disk recovery path.
  FileServerProgram recovered(options);
  {
    ByteReader r(h.server_syncs.back());
    ServerSyncPrefix::Deserialize(r);
    recovered.ApplyServerSync(r);
  }
  ProgramHarness h2(recovered);
  h2.disk = h.disk;  // the dual-ported disk
  h2.Drain();        // boots from the committed superblock
  EXPECT_TRUE(recovered.HasFile("f"));
  EXPECT_EQ(recovered.FileSize("f"), 10u);
}

// -------------------------------------------------------------- tty server

TEST(TtyServer, BindThenInputForwardsToSession) {
  TtyServerProgram tty(TtyServerOptions{});
  ProgramHarness h(tty);
  h.Push(kChan, kUser, kBindTtyLineBase + 0, MsgKind::kUser, EncodeTagged(ReqTag::kTtyBind));
  h.Drain();
  ByteWriter in;
  in.U8(static_cast<uint8_t>(ReqTag::kDevInput));
  in.U32(0);
  in.Blob(Bytes{'h', 'i'});
  h.Push(99, kUser, kBindSelfChannel, MsgKind::kUser, in.Take());
  h.Deliver();
  ASSERT_EQ(h.sent.size(), 1u);
  EXPECT_EQ(h.sent[0].channel, kChan);
  ByteReader r(h.sent[0].payload);
  EXPECT_EQ(static_cast<ReqTag>(r.U8()), ReqTag::kTtyInput);
  EXPECT_EQ(r.Blob(), (Bytes{'h', 'i'}));
}

TEST(TtyServer, OutputsCarryMonotonicSequence) {
  TtyServerProgram tty(TtyServerOptions{});
  ProgramHarness h(tty);
  for (int i = 0; i < 3; ++i) {
    h.Push(kChan, kUser, kBindTtyLineBase + 2, MsgKind::kUser,
           EncodeTaggedBlob(ReqTag::kTtyWrite, Bytes{static_cast<uint8_t>('0' + i)}));
  }
  h.Drain();
  ASSERT_EQ(h.tty_emits.size(), 3u);
  for (uint64_t i = 0; i < 3; ++i) {
    ByteReader r(h.tty_emits[i]);
    EXPECT_EQ(r.U32(), 2u);      // line
    EXPECT_EQ(r.U64(), i + 1);   // seq
  }
}

TEST(TtyServer, CtrlCRoutesSignalThroughProcServer) {
  TtyServerProgram tty(TtyServerOptions{});
  ProgramHarness h(tty);
  h.find_chan[kBindProcChannel] = 555;
  h.Push(kChan, kUser, kBindTtyLineBase + 0, MsgKind::kUser, EncodeTagged(ReqTag::kTtyBind));
  h.Drain();
  ByteWriter in;
  in.U8(static_cast<uint8_t>(ReqTag::kDevInput));
  in.U32(0);
  in.Blob(Bytes{0x03});
  h.Push(99, kUser, kBindSelfChannel, MsgKind::kUser, in.Take());
  h.Deliver();
  ASSERT_EQ(h.sent.size(), 1u);
  EXPECT_EQ(h.sent[0].channel, 555u);
  ByteReader r(h.sent[0].payload);
  EXPECT_EQ(static_cast<ReqTag>(r.U8()), ReqTag::kSignalReq);
  Gpid target;
  target.value = r.U64();
  EXPECT_EQ(target, kUser);
  EXPECT_EQ(r.U32(), kSigInt);
}

TEST(TtyServer, ServerSyncCarriesBindingsAndSeqs) {
  TtyServerOptions options;
  options.sync_every_ops = 1;
  TtyServerProgram tty(options);
  ProgramHarness h(tty);
  h.Push(kChan, kUser, kBindTtyLineBase + 1, MsgKind::kUser,
         EncodeTaggedBlob(ReqTag::kTtyWrite, Bytes{'x'}));
  h.Drain();
  ASSERT_GE(h.server_syncs.size(), 1u);
  TtyServerProgram backup(options);
  ByteReader r(h.server_syncs.back());
  ServerSyncPrefix prefix = ServerSyncPrefix::Deserialize(r);
  backup.ApplyServerSync(r);
  ASSERT_EQ(prefix.serviced.size(), 1u);
  EXPECT_EQ(prefix.serviced[0].first.value, kChan);
  // The mirrored backup continues the sequence where the primary left off.
  ProgramHarness h2(backup);
  h2.Push(kChan, kUser, kBindTtyLineBase + 1, MsgKind::kUser,
          EncodeTaggedBlob(ReqTag::kTtyWrite, Bytes{'y'}));
  h2.Drain();
  ASSERT_EQ(h2.tty_emits.size(), 1u);
  ByteReader e(h2.tty_emits[0]);
  e.U32();
  EXPECT_EQ(e.U64(), 2u);  // continues after the primary's seq 1
}

// ---------------------------------------------------------- process server

TEST(ProcessServer, TimeRequestRepliesSimTime) {
  ProcessServerProgram ps;
  ProgramHarness h(ps);
  h.now = 123456;
  h.Push(kChan, kUser, kBindProcChannel, MsgKind::kUser, EncodeTagged(ReqTag::kTime));
  h.Drain();
  ASSERT_EQ(h.sent.size(), 1u);
  ByteReader r(h.sent[0].payload);
  EXPECT_EQ(static_cast<ReqTag>(r.U8()), ReqTag::kTime64);
  EXPECT_EQ(r.U64(), 123456u);
}

TEST(ProcessServer, AlarmArmsTimerAndFiresSignal) {
  ProcessServerProgram ps;
  ProgramHarness h(ps);
  h.find_chan[kBindSignalChannel] = 777;
  h.Push(kChan, kUser, kBindProcChannel, MsgKind::kUser,
         EncodeTaggedU64(ReqTag::kAlarm, 5000));
  h.Drain();
  ASSERT_EQ(h.timers.size(), 1u);
  EXPECT_EQ(h.timers[0].first, 5000u);
  EXPECT_EQ(ps.pending_alarms(), 1u);

  // Timer fires: SIGALRM emitted on the requester's signal channel.
  h.Push(99, Gpid::Make(31, 1), kBindSelfChannel, MsgKind::kUser,
         EncodeTaggedU64(ReqTag::kTimerFire, h.timers[0].second));
  h.Deliver();
  ASSERT_EQ(h.sent.size(), 1u);
  EXPECT_EQ(h.sent[0].channel, 777u);
  EXPECT_EQ(h.sent[0].kind, 2u);  // kSignal
  EXPECT_EQ(ps.pending_alarms(), 0u);
}

TEST(ProcessServer, RestoreRearmsPendingAlarms) {
  ProcessServerProgram ps;
  ProgramHarness h(ps);
  h.now = 10'000;
  h.Push(kChan, kUser, kBindProcChannel, MsgKind::kUser,
         EncodeTaggedU64(ReqTag::kAlarm, 50'000));
  h.Drain();

  ByteWriter w;
  ps.SerializeState(w);
  ProcessServerProgram restored;
  ByteReader r(w.bytes());
  restored.RestoreState(r);
  EXPECT_TRUE(restored.WantsRunAfterRestore());
  ProgramHarness h2(restored);
  h2.MarkRestored();
  h2.now = 30'000;  // 20k us elapsed since the alarm was set
  h2.Drain();
  ASSERT_EQ(h2.timers.size(), 1u);
  EXPECT_EQ(h2.timers[0].first, 30'000u);  // deadline 60k - now 30k
}

TEST(ProcessServer, StaleTimerFireIsIgnored) {
  ProcessServerProgram ps;
  ProgramHarness h(ps);
  h.Push(99, kUser, kBindSelfChannel, MsgKind::kUser,
         EncodeTaggedU64(ReqTag::kTimerFire, 424242));
  h.Drain();
  EXPECT_TRUE(h.sent.empty());
}

}  // namespace
}  // namespace auragen
