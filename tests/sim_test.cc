// Unit tests for the discrete-event engine: ordering, cancellation,
// determinism of ties.

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/engine.h"

namespace auragen {
namespace {

TEST(Engine, FiresInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.Schedule(30, [&] { order.push_back(3); });
  engine.Schedule(10, [&] { order.push_back(1); });
  engine.Schedule(20, [&] { order.push_back(2); });
  engine.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.Now(), 30u);
}

TEST(Engine, TiesBreakFifo) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    engine.Schedule(5, [&order, i] { order.push_back(i); });
  }
  engine.Run();
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(Engine, NestedScheduling) {
  Engine engine;
  std::vector<SimTime> times;
  engine.Schedule(10, [&] {
    times.push_back(engine.Now());
    engine.Schedule(5, [&] { times.push_back(engine.Now()); });
  });
  engine.Run();
  EXPECT_EQ(times, (std::vector<SimTime>{10, 15}));
}

TEST(Engine, CancelPreventsDispatch) {
  Engine engine;
  bool fired = false;
  EventId id = engine.Schedule(10, [&] { fired = true; });
  engine.Cancel(id);
  engine.Run();
  EXPECT_FALSE(fired);
}

TEST(Engine, CancelAfterFireIsNoop) {
  Engine engine;
  int count = 0;
  EventId id = engine.Schedule(1, [&] { ++count; });
  engine.Run();
  engine.Cancel(id);  // must not disturb anything
  engine.Schedule(1, [&] { ++count; });
  engine.Run();
  EXPECT_EQ(count, 2);
}

TEST(Engine, RunUntilHorizonAdvancesClock) {
  Engine engine;
  bool fired = false;
  engine.Schedule(100, [&] { fired = true; });
  engine.Run(50);
  EXPECT_FALSE(fired);
  EXPECT_EQ(engine.Now(), 50u);
  engine.Run(200);
  EXPECT_TRUE(fired);
}

TEST(Engine, StepOneAtATime) {
  Engine engine;
  int count = 0;
  engine.Schedule(1, [&] { ++count; });
  engine.Schedule(2, [&] { ++count; });
  EXPECT_TRUE(engine.Step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(engine.Step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(engine.Step());
}

TEST(Engine, StopInterruptsRun) {
  Engine engine;
  int count = 0;
  engine.Schedule(1, [&] {
    ++count;
    engine.Stop();
  });
  engine.Schedule(2, [&] { ++count; });
  engine.Run();
  EXPECT_EQ(count, 1);
  engine.Run();
  EXPECT_EQ(count, 2);
}

TEST(Engine, SchedulingIntoThePastPanics) {
  Engine engine;
  engine.Schedule(10, [] {});
  engine.Run();
  EXPECT_DEATH(engine.ScheduleAt(5, [] {}), "scheduling into the past");
}

}  // namespace
}  // namespace auragen
