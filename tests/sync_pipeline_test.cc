// Tests for the incremental copy-on-write sync pipeline and the redesigned
// Machine configuration API: SyncPolicy / ServerPlacement validation, the
// sync-trigger matrix (reads vs time vs adaptive), generation-based dirty
// tracking (a page dirtied during an async drain window must reach the next
// increment, never be lost), per-mode determinism, and sharded page-server
// placement and recovery.

#include <gtest/gtest.h>

#include <string>

#include "src/avm/assembler.h"
#include "src/avm/memory.h"
#include "src/kernel/native_body.h"
#include "src/machine/machine.h"
#include "src/trace/analysis.h"
#include "src/paging/page_server.h"

namespace auragen {
namespace {

// Dirties `pages` consecutive pages starting at 0x4000, `rounds` times, with
// a sync hint after each round, then exits.
Executable PageDirtier(int pages, int rounds) {
  return MustAssemble(R"(
start:
    li r8, 0
outer:
    li r2, 0x4000
    li r4, 0
    li r9, )" + std::to_string(pages) + R"(
inner:
    st r8, r2, 0
    addi r2, r2, 256
    addi r4, r4, 1
    blt r4, r9, inner
    sys synchint
    addi r8, r8, 1
    li r9, )" + std::to_string(rounds) + R"(
    blt r8, r9, outer
    sys exit
)");
}

// Spins forever on pure compute (budget-sliced, so the time-based sync
// trigger gets its quiescent points), dirtying ~nothing.
Executable Spinner() {
  return MustAssemble(R"(
start:
    li r2, 0x4000
    li r3, 1
    st r3, r2, 0
spin:
    addi r4, r4, 1
    jmp spin
)");
}

// ------------------------------------------------------------- validation

TEST(SyncPolicyValidation, RejectsBadPolicies) {
  SyncPolicy p;
  EXPECT_EQ(p.Validate(), "");
  p.drain_batch_pages = 0;
  EXPECT_NE(p.Validate(), "");
  p = SyncPolicy{};
  p.adaptive = true;
  p.adaptive_min_time_us = 0;
  EXPECT_NE(p.Validate(), "");
  p = SyncPolicy{};
  p.adaptive = true;
  p.adaptive_min_time_us = 90000;  // min > max
  EXPECT_NE(p.Validate(), "");
  p = SyncPolicy{};
  p.adaptive = true;
  p.adaptive_dirty_low = 24;
  p.adaptive_dirty_high = 24;  // low must be < high
  EXPECT_NE(p.Validate(), "");
}

TEST(PlacementValidation, AcceptsDefaultsAndRotatedShards) {
  MachineOptions options;
  options.config.num_clusters = 2;
  EXPECT_EQ(options.Validate(), "");
  options.config.num_clusters = 4;
  options.config.page_shards = 4;
  EXPECT_EQ(options.Validate(), "");
}

TEST(PlacementValidation, RejectsPrimaryEqualsBackup) {
  MachineOptions options;
  options.config.num_clusters = 2;
  options.placement.file = ClusterPair{1, 1};
  std::string err = options.Validate();
  EXPECT_NE(err.find("file server"), std::string::npos) << err;
  EXPECT_NE(err.find("must differ"), std::string::npos) << err;
}

TEST(PlacementValidation, RejectsOutOfRangeCluster) {
  MachineOptions options;
  options.config.num_clusters = 2;
  options.placement.tty = ClusterPair{5, 1};
  std::string err = options.Validate();
  EXPECT_NE(err.find("tty server"), std::string::npos) << err;
  EXPECT_NE(err.find("out of range"), std::string::npos) << err;
}

TEST(PlacementValidation, RejectsServerOffItsDiskPorts) {
  // §7.9: the file server (and its backup) must sit on a port of its disk.
  MachineOptions options;
  options.config.num_clusters = 4;
  options.placement.file = ClusterPair{2, 3};
  options.placement.file_disk = ClusterPair{0, 1};
  std::string err = options.Validate();
  EXPECT_NE(err.find("§7.9"), std::string::npos) << err;
}

TEST(PlacementValidation, NonFtSkipsBackupConstraints) {
  MachineOptions options;
  options.config.num_clusters = 1;
  options.config.strategy = FtStrategy::kNone;
  // Backups and disk ports are unused without FT; only primaries must be in
  // range, so a one-cluster machine validates once primaries are moved there.
  options.placement.file = ClusterPair{0, 0};
  options.placement.page = ClusterPair{0, 1};
  EXPECT_EQ(options.Validate(), "");
}

TEST(PlacementValidation, BootDiesOnInvalidOptions) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  MachineOptions options;
  options.config.num_clusters = 2;
  options.placement.page = ClusterPair{0, 0};
  Machine machine(options);
  EXPECT_DEATH(machine.Boot(), "invalid MachineOptions");
}

TEST(PlacementValidation, FluentBuilderComposes) {
  MachineOptions options = MachineOptions()
                               .WithSeed(7)
                               .WithClusters(4)
                               .WithSyncMode(SyncMode::kIncrementalAsync)
                               .WithAdaptiveSync()
                               .WithSyncLimits(16, 30000)
                               .WithPageShards(2);
  EXPECT_EQ(options.seed, 7u);
  EXPECT_EQ(options.config.num_clusters, 4u);
  EXPECT_EQ(options.config.sync_policy.mode, SyncMode::kIncrementalAsync);
  EXPECT_TRUE(options.config.sync_policy.adaptive);
  EXPECT_EQ(options.config.sync_reads_limit, 16u);
  EXPECT_EQ(options.config.sync_time_limit_us, 30000u);
  EXPECT_EQ(options.config.page_shards, 2u);
  EXPECT_EQ(options.Validate(), "");
}

// --------------------------------------------- generation dirty tracking

TEST(GuestMemoryGenerations, WriteDuringFlushWindowIsNotLost) {
  GuestMemory mem;
  mem.MaterializeZero(0x4000 / kAvmPageBytes, false);
  ASSERT_EQ(mem.Write8(0x4000, 1), GuestMemory::Access::kOk);
  EXPECT_TRUE(mem.Dirty(0x4000 / kAvmPageBytes));

  // First increment: captures the dirty page and opens a new generation.
  auto first = mem.CaptureFlushPages(false);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_FALSE(mem.Dirty(0x4000 / kAvmPageBytes));

  // COW semantics: a write landing while the captured copy drains dirties
  // the page in the *new* generation...
  ASSERT_EQ(mem.Write8(0x4000, 2), GuestMemory::Access::kOk);
  EXPECT_TRUE(mem.Dirty(0x4000 / kAvmPageBytes));
  // ...and the drained copy holds the pre-write value.
  EXPECT_EQ(first[0].second[0], 1);

  // Second increment: the re-dirtied page is flushed again, with the new
  // value, and nothing else rides along.
  auto second = mem.CaptureFlushPages(false);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].first, 0x4000 / kAvmPageBytes);
  EXPECT_EQ(second[0].second[0], 2);
  EXPECT_FALSE(mem.Dirty(0x4000 / kAvmPageBytes));
}

TEST(GuestMemoryGenerations, FullCaptureShipsEveryResidentPage) {
  GuestMemory mem;
  mem.MaterializeZero(1, false);
  mem.MaterializeZero(2, false);
  ASSERT_EQ(mem.Write8(2 * kAvmPageBytes, 9), GuestMemory::Access::kOk);
  auto full = mem.CaptureFlushPages(true);
  EXPECT_EQ(full.size(), 2u);  // clean page 1 ships too (stop-and-copy)
  auto incr = mem.CaptureFlushPages(false);
  EXPECT_TRUE(incr.empty());
}

// ------------------------------------------------------- trigger matrix

MachineOptions SyncTestOptions(SyncMode mode) {
  MachineOptions options;
  options.config.num_clusters = 2;
  options.config.sync_policy.mode = mode;
  return options;
}

TEST(SyncTriggerMatrix, ReadsTriggeredSyncs) {
  MachineOptions options = SyncTestOptions(SyncMode::kIncremental);
  options.config.sync_reads_limit = 2;
  options.config.sync_time_limit_us = 60'000'000;
  Machine machine(options);
  machine.Boot();
  uint64_t boot_syncs = machine.metrics().syncs;
  Machine::UserSpawnOptions opts;
  opts.backup_cluster = 1;
  machine.SpawnUserProgram(0, PageDirtier(4, 3), opts);
  machine.Run(5'000'000);
  EXPECT_GT(machine.metrics().syncs, boot_syncs);
}

TEST(SyncTriggerMatrix, TimeTriggeredSyncs) {
  MachineOptions options = SyncTestOptions(SyncMode::kIncremental);
  options.config.sync_reads_limit = 1'000'000;
  options.config.sync_time_limit_us = 500;
  Machine machine(options);
  machine.Boot();
  uint64_t boot_syncs = machine.metrics().syncs;
  Machine::UserSpawnOptions opts;
  opts.backup_cluster = 1;
  machine.SpawnUserProgram(0, Spinner(), opts);
  machine.Run(3'000'000);
  EXPECT_GT(machine.metrics().syncs, boot_syncs);
}

TEST(SyncTriggerMatrix, AdaptiveLoosensForCleanProcesses) {
  // A spinner dirties ~nothing, so every time-triggered flush is tiny and
  // the adaptive trigger doubles its interval up to the bound.
  MachineOptions options = SyncTestOptions(SyncMode::kIncremental);
  options.config.sync_reads_limit = 1'000'000;
  options.config.sync_time_limit_us = 2'000;
  options.config.sync_policy.adaptive = true;
  Machine machine(options);
  machine.Boot();
  Machine::UserSpawnOptions opts;
  opts.backup_cluster = 1;
  machine.SpawnUserProgram(0, Spinner(), opts);
  machine.Run(10'000'000);
  EXPECT_GT(machine.metrics().sync_adaptive_loosen, 0u);
  EXPECT_EQ(machine.metrics().sync_adaptive_tighten, 0u);
}

TEST(SyncTriggerMatrix, AdaptiveTightensForDirtyHeavyProcesses) {
  MachineOptions options = SyncTestOptions(SyncMode::kIncremental);
  options.config.sync_reads_limit = 1'000'000;
  options.config.sync_time_limit_us = 40'000;
  options.config.sync_policy.adaptive = true;
  options.config.sync_policy.adaptive_dirty_high = 8;
  Machine machine(options);
  machine.Boot();
  Machine::UserSpawnOptions opts;
  opts.backup_cluster = 1;
  // No synchint rounds here: 40 dirty pages accumulate until the time
  // trigger fires, beating adaptive_dirty_high.
  machine.SpawnUserProgram(0, MustAssemble(R"(
start:
    li r8, 0
outer:
    li r2, 0x4000
    li r4, 0
    li r9, 40
inner:
    st r8, r2, 0
    addi r2, r2, 256
    addi r4, r4, 1
    blt r4, r9, inner
    addi r8, r8, 1
    jmp outer
)"),
                           opts);
  machine.Run(10'000'000);
  EXPECT_GT(machine.metrics().sync_adaptive_tighten, 0u);
}

// ------------------------------------------------------- async pipeline

TEST(AsyncFlush, DrainsPagesOffTheStallPath) {
  MachineOptions options = SyncTestOptions(SyncMode::kIncrementalAsync);
  Machine machine(options);
  machine.Boot();
  Machine::UserSpawnOptions opts;
  opts.backup_cluster = 1;
  Gpid pid = machine.SpawnUserProgram(0, PageDirtier(24, 4), opts);
  ASSERT_TRUE(machine.RunUntilAllExited(60'000'000));
  machine.Settle();
  EXPECT_EQ(machine.ExitStatus(pid), 0);
  const Metrics& m = machine.metrics();
  EXPECT_GT(m.sync_flushes_async, 0u);
  EXPECT_GT(m.sync_drain_async_us, 0u);
  EXPECT_GT(m.sync_flush_overlap_us, 0u);
  // Async flushes never pay the inline page-enqueue stall.
  EXPECT_EQ(m.sync_enqueue_stall_us, 0u);
  EXPECT_GT(m.sync_build_stall_us, 0u);
}

TEST(AsyncFlush, RedirtiedPageReachesPageServerNextIncrement) {
  MachineOptions options = SyncTestOptions(SyncMode::kIncrementalAsync);
  Machine machine(options);
  machine.Boot();
  Machine::UserSpawnOptions opts;
  opts.backup_cluster = 0;
  // Two rounds: round 1 flushes 0x4000..; round 2 re-dirties the same pages
  // (store value changes) and must flush them again.
  Gpid pid = machine.SpawnUserProgram(1, PageDirtier(6, 2), opts);
  ASSERT_TRUE(machine.RunUntilAllExited(60'000'000));
  machine.Settle();

  Pcb* ps = machine.kernel(machine.page_server_addr().primary).FindProcess(Machine::kPagePid);
  ASSERT_NE(ps, nullptr);
  auto* body = dynamic_cast<NativeBody*>(ps->body.get());
  ASSERT_NE(body, nullptr);
  auto* program = dynamic_cast<PageServerProgram*>(&body->program());
  ASSERT_NE(program, nullptr);
  for (PageNum p = 0x4000 / kAvmPageBytes; p < 0x4000 / kAvmPageBytes + 6; ++p) {
    EXPECT_TRUE(program->PrimaryHasPage(pid, p)) << "page " << p;
    EXPECT_TRUE(program->BackupHasPage(pid, p)) << "page " << p;
  }
}

TEST(AsyncFlush, SurvivesPrimaryCrashMidWorkload) {
  for (SimTime crash_at : {30'000, 60'000, 120'000}) {
    MachineOptions options = SyncTestOptions(SyncMode::kIncrementalAsync);
    options.config.num_clusters = 3;
    Machine machine(options);
    machine.Boot();
    Machine::UserSpawnOptions opts;
    opts.backup_cluster = 1;
    Gpid pid = machine.SpawnUserProgram(0, PageDirtier(16, 6), opts);
    machine.CrashClusterAt(crash_at, 0);
    ASSERT_TRUE(machine.RunUntilAllExited(120'000'000)) << "crash_at=" << crash_at;
    machine.Settle();
    EXPECT_EQ(machine.ExitStatus(pid), 0) << "crash_at=" << crash_at;
  }
}

// ----------------------------------------------------------- determinism

TraceDigest DigestOfRun(SyncMode mode, uint64_t seed) {
  MachineOptions options = SyncTestOptions(mode);
  options.seed = seed;
  options.trace.enabled = true;
  options.trace.unbounded = false;
  options.trace.ring_capacity = 1024;
  Machine machine(options);
  machine.Boot();
  Machine::UserSpawnOptions opts;
  opts.backup_cluster = 1;
  machine.SpawnUserProgram(0, PageDirtier(12, 3), opts);
  Machine::UserSpawnOptions sopts;
  sopts.backup_cluster = 0;
  machine.SpawnUserProgram(1, PageDirtier(8, 2), sopts);
  machine.RunUntilAllExited(60'000'000);
  machine.Settle();
  return machine.tracer()->digest();
}

TEST(SyncDeterminism, EachModeReplaysBitIdentically) {
  for (SyncMode mode :
       {SyncMode::kStopAndCopy, SyncMode::kIncremental, SyncMode::kIncrementalAsync}) {
    TraceDigest a = DigestOfRun(mode, 42);
    TraceDigest b = DigestOfRun(mode, 42);
    EXPECT_TRUE(a == b) << "mode=" << SyncModeName(mode);
  }
}

TEST(SyncAnalysis, FlushEventsFeedTheStatsHistograms) {
  MachineOptions options = SyncTestOptions(SyncMode::kIncrementalAsync);
  options.trace.enabled = true;
  options.trace.unbounded = true;
  Machine machine(options);
  machine.Boot();
  Machine::UserSpawnOptions opts;
  opts.backup_cluster = 1;
  machine.SpawnUserProgram(0, PageDirtier(16, 4), opts);
  ASSERT_TRUE(machine.RunUntilAllExited(60'000'000));
  machine.Settle();

  TraceAnalysis analysis = AnalyzeTrace(machine.tracer()->Events());
  EXPECT_GT(analysis.sync_stall.count(), 0u);
  EXPECT_GT(analysis.sync_build.count(), 0u);
  EXPECT_GT(analysis.sync_flush_pages.count(), 0u);
  EXPECT_GT(analysis.sync_flush_pages.max_us(), 0u);  // pages, not us
  // Async mode: enqueue stall is zero, drain overlap is not.
  EXPECT_EQ(analysis.sync_page_enqueue.max_us(), 0u);
  EXPECT_GT(analysis.sync_drain_overlap.max_us(), 0u);
  EXPECT_NE(analysis.ToString().find("sync drain overlap"), std::string::npos);
}

// -------------------------------------------------------------- sharding

TEST(PageSharding, ShardsPlaceRotatedAndServePages) {
  MachineOptions options;
  options.config.num_clusters = 4;
  options.config.page_shards = 3;
  Machine machine(options);
  machine.Boot();
  ASSERT_EQ(machine.page_shard_count(), 3u);
  // Rotation: shard s sits at (1 + s) % 4 with backup (0 + s) % 4.
  EXPECT_EQ(machine.page_server_addr(0).primary, 1u);
  EXPECT_EQ(machine.page_server_addr(1).primary, 2u);
  EXPECT_EQ(machine.page_server_addr(2).primary, 3u);
  EXPECT_EQ(machine.page_server_addr(1).backup, 1u);

  // Processes on different clusters hash to different shards and both
  // complete their paged workloads.
  Machine::UserSpawnOptions opts;
  Gpid a = machine.SpawnUserProgram(0, PageDirtier(10, 2), opts);  // shard 0
  Gpid b = machine.SpawnUserProgram(1, PageDirtier(10, 2), opts);  // shard 1
  Gpid c = machine.SpawnUserProgram(2, PageDirtier(10, 2), opts);  // shard 2
  ASSERT_TRUE(machine.RunUntilAllExited(60'000'000));
  machine.Settle();
  EXPECT_EQ(machine.ExitStatus(a), 0);
  EXPECT_EQ(machine.ExitStatus(b), 0);
  EXPECT_EQ(machine.ExitStatus(c), 0);
}

TEST(PageSharding, ShardPrimaryCrashFailsOverAndRebacksOnRestore) {
  MachineOptions options;
  options.config.num_clusters = 4;
  options.config.page_shards = 2;
  options.config.sync_policy.mode = SyncMode::kIncrementalAsync;
  Machine machine(options);
  machine.Boot();
  // Shard 0: primary 1, backup 0. Shard 1: primary 2, backup 1.
  ASSERT_EQ(machine.page_server_addr(0).primary, 1u);
  ASSERT_EQ(machine.page_server_addr(1).primary, 2u);

  Machine::UserSpawnOptions opts;
  opts.backup_cluster = 3;
  Gpid pid = machine.SpawnUserProgram(0, PageDirtier(12, 5), opts);  // shard 0
  // Crash shard 0's primary (also shard 1's backup): shard 0 must take over
  // on cluster 0 and keep serving pid's faults and flushes.
  machine.CrashClusterAt(40'000, 1);
  ASSERT_TRUE(machine.RunUntilAllExited(120'000'000));
  machine.Settle();
  EXPECT_EQ(machine.ExitStatus(pid), 0);
  EXPECT_EQ(machine.page_server_addr(0).primary, 0u);
  EXPECT_EQ(machine.page_server_addr(0).backup, kNoCluster);

  // §7.3 halfback return-to-service: the restored cluster hosts new active
  // backups for both displaced shards.
  machine.RestoreCluster(1);
  machine.Run(2'000'000);
  EXPECT_EQ(machine.page_server_addr(0).backup, 1u);
  EXPECT_EQ(machine.page_server_addr(1).backup, 1u);
}

}  // namespace
}  // namespace auragen
