// Edge-case tests for the syscall surface: error returns, truncation,
// close/EOF interplay, seek, and cross-terminal isolation.

#include <gtest/gtest.h>

#include "src/avm/assembler.h"
#include "src/machine/machine.h"

namespace auragen {
namespace {

MachineOptions TwoClusters() {
  MachineOptions options;
  options.config.num_clusters = 2;
  return options;
}

int RunToExit(Machine& machine, const Executable& exe, ClusterId cluster,
              bool with_tty = false) {
  Machine::UserSpawnOptions opts;
  opts.with_tty = with_tty;
  Gpid pid = machine.SpawnUserProgram(cluster, exe, opts);
  EXPECT_TRUE(machine.RunUntilAllExited(30'000'000));
  machine.Settle();
  return machine.HasExited(pid) ? machine.ExitStatus(pid) : -999;
}

TEST(SyscallEdge, ReadFromBadFdReturnsError) {
  Machine machine(TwoClusters());
  machine.Boot();
  Executable prog = MustAssemble(R"(
start:
    li r1, 42          ; never-opened fd
    li r2, buf
    li r3, 4
    sys read
    li r12, 0
    bge r0, r12, bad   ; expect a negative error
    exit 0
bad:
    exit 1
.data
buf: .space 4
)");
  EXPECT_EQ(RunToExit(machine, prog, 0), 0);
}

TEST(SyscallEdge, WriteToBadFdReturnsError) {
  Machine machine(TwoClusters());
  machine.Boot();
  Executable prog = MustAssemble(R"(
start:
    li r1, 42
    li r2, buf
    li r3, 4
    sys write
    li r12, 0
    bge r0, r12, bad
    exit 0
bad:
    exit 1
.data
buf: .space 4
)");
  EXPECT_EQ(RunToExit(machine, prog, 0), 0);
}

TEST(SyscallEdge, CloseThenUseReturnsError) {
  Machine machine(TwoClusters());
  machine.Boot();
  Executable prog = MustAssemble(R"(
start:
    li r1, fname
    li r2, 1
    sys open
    mov r10, r0
    mov r1, r10
    sys close
    li r12, 0
    bne r0, r12, bad
    mov r1, r10
    li r2, buf
    li r3, 4
    sys read
    li r12, 0
    bge r0, r12, bad
    exit 0
bad:
    exit 1
.data
fname: .ascii "f"
buf: .space 4
)");
  EXPECT_EQ(RunToExit(machine, prog, 0), 0);
}

TEST(SyscallEdge, ReadTruncatesToMax) {
  Machine machine(TwoClusters());
  machine.Boot();
  // Writer sends 8 bytes; reader asks for 3 and must get rv == 3.
  Executable writer = MustAssemble(R"(
start:
    li r1, name
    li r2, 4
    sys open
    mov r1, r0
    li r2, data
    li r3, 8
    sys write
    exit 0
.data
name: .ascii "ch:t"
data: .ascii "ABCDEFGH"
)");
  Executable reader = MustAssemble(R"(
start:
    li r1, name
    li r2, 4
    sys open
    mov r10, r0
    mov r1, r10
    li r2, buf
    li r3, 3
    sys read
    li r12, 3
    bne r0, r12, bad
    li r11, buf
    ldb r2, r11, 2
    li r12, 'C'
    bne r2, r12, bad
    exit 0
bad:
    exit 1
.data
name: .ascii "ch:t"
buf: .space 8
)");
  machine.SpawnUserProgram(0, writer);
  Gpid rpid = machine.SpawnUserProgram(1, reader);
  ASSERT_TRUE(machine.RunUntilAllExited(30'000'000));
  machine.Settle();
  EXPECT_EQ(machine.ExitStatus(rpid), 0);
}

TEST(SyscallEdge, FileSeekRepositionsReads) {
  Machine machine(TwoClusters());
  machine.Boot();
  Executable prog = MustAssemble(R"(
start:
    li r1, fname
    li r2, 1
    sys open
    mov r10, r0
    mov r1, r10
    li r2, data
    li r3, 10
    sys write
    ; seek to offset 5 via writev of a kFileSeek... not exposed; instead
    ; reopen and read twice to advance, then verify sequential semantics.
    li r1, fname
    li r2, 1
    sys open
    mov r11, r0
    mov r1, r11
    li r2, buf
    li r3, 5
    sys read
    li r12, 5
    bne r0, r12, bad
    mov r1, r11
    li r2, buf
    li r3, 5
    sys read
    li r12, 5
    bne r0, r12, bad
    li r11, buf
    ldb r2, r11, 0
    li r12, '5'
    bne r2, r12, bad
    exit 0
bad:
    exit 1
.data
fname: .ascii "s"
data: .ascii "0123456789"
buf: .space 8
)");
  EXPECT_EQ(RunToExit(machine, prog, 0), 0);
}

TEST(SyscallEdge, TerminalsAreIsolatedPerLine) {
  Machine machine(TwoClusters());
  machine.Boot();
  auto writer = [](char c) {
    return MustAssemble(std::string(R"(
start:
    li r1, 2
    li r2, ch
    li r3, 1
    sys write
    exit 0
.data
ch: .byte ')") + c + "'\n");
  };
  Machine::UserSpawnOptions line0;
  line0.with_tty = true;
  line0.tty_line = 0;
  Machine::UserSpawnOptions line1;
  line1.with_tty = true;
  line1.tty_line = 1;
  machine.SpawnUserProgram(0, writer('X'), line0);
  machine.SpawnUserProgram(1, writer('Y'), line1);
  ASSERT_TRUE(machine.RunUntilAllExited(10'000'000));
  machine.Settle();
  EXPECT_EQ(machine.TtyOutput(0), "X");
  EXPECT_EQ(machine.TtyOutput(1), "Y");
}

TEST(SyscallEdge, WhichOnUnknownGroupErrors) {
  Machine machine(TwoClusters());
  machine.Boot();
  Executable prog = MustAssemble(R"(
start:
    li r1, 99
    sys which
    li r12, 0
    bge r0, r12, bad
    exit 0
bad:
    exit 1
)");
  EXPECT_EQ(RunToExit(machine, prog, 1), 0);
}

TEST(SyscallEdge, LargeMessageRoundTrips) {
  Machine machine(TwoClusters());
  machine.Boot();
  // 1 KiB payload across the bus and back into guest memory (spans pages).
  Executable writer = MustAssemble(R"(
start:
    ; fill 1024 bytes with a pattern
    li r4, data
    li r5, 0
fill:
    stb r5, r4, 0
    addi r4, r4, 1
    addi r5, r5, 1
    li r6, 1024
    blt r5, r6, fill
    li r1, name
    li r2, 4
    sys open
    mov r1, r0
    li r2, data
    li r3, 1024
    sys write
    exit 0
.data
name: .ascii "ch:L"
data: .space 1024
)");
  Executable reader = MustAssemble(R"(
start:
    li r1, name
    li r2, 4
    sys open
    mov r10, r0
    mov r1, r10
    li r2, buf
    li r3, 1024
    sys read
    li r12, 1024
    bne r0, r12, bad
    ; spot-check bytes 0, 511, 1023 (pattern = index & 0xff)
    li r11, buf
    ldb r2, r11, 0
    li r12, 0
    bne r2, r12, bad
    ldb r2, r11, 511
    li r12, 255
    bne r2, r12, bad
    ldb r2, r11, 1023
    li r12, 255
    bne r2, r12, bad
    exit 0
bad:
    exit 1
.data
name: .ascii "ch:L"
buf: .space 1024
)");
  machine.SpawnUserProgram(0, writer);
  Gpid rpid = machine.SpawnUserProgram(1, reader);
  ASSERT_TRUE(machine.RunUntilAllExited(30'000'000));
  machine.Settle();
  EXPECT_EQ(machine.ExitStatus(rpid), 0);
}

TEST(SyscallEdge, MessagesOnOneChannelStayOrderedUnderLoad) {
  Machine machine(TwoClusters());
  machine.Boot();
  Executable writer = MustAssemble(R"(
start:
    li r1, name
    li r2, 4
    sys open
    mov r10, r0
    li r8, 0
loop:
    li r11, buf
    st r8, r11, 0
    mov r1, r10
    li r2, buf
    li r3, 4
    sys write
    addi r8, r8, 1
    li r11, 64
    blt r8, r11, loop
    exit 0
.data
name: .ascii "ch:o"
buf: .word 0
)");
  Executable reader = MustAssemble(R"(
start:
    li r1, name
    li r2, 4
    sys open
    mov r10, r0
    li r8, 0
loop:
    mov r1, r10
    li r2, buf
    li r3, 4
    sys read
    li r11, buf
    ld r2, r11, 0
    bne r2, r8, bad    ; must arrive exactly in send order
    addi r8, r8, 1
    li r11, 64
    blt r8, r11, loop
    exit 0
bad:
    exit 1
.data
name: .ascii "ch:o"
buf: .word 0
)");
  machine.SpawnUserProgram(0, writer);
  Gpid rpid = machine.SpawnUserProgram(1, reader);
  ASSERT_TRUE(machine.RunUntilAllExited(60'000'000));
  machine.Settle();
  EXPECT_EQ(machine.ExitStatus(rpid), 0);
}

}  // namespace
}  // namespace auragen
