// Unit tests for the trace subsystem itself: ring-buffer capture, digest
// stability, file round-trip, kind masking, Chrome export shape, and the
// latency analysis pass. Whole-machine trace determinism is covered by
// determinism_test.cc.

#include <gtest/gtest.h>

#include "src/avm/assembler.h"
#include "src/machine/machine.h"
#include "src/trace/analysis.h"
#include "src/trace/chrome_trace.h"
#include "src/trace/trace.h"

namespace auragen {
namespace {

TraceOptions Capture() {
  TraceOptions o;
  o.enabled = true;
  o.unbounded = true;
  o.kind_mask = ~uint64_t{0};
  return o;
}

TEST(Trace, RecordsAndFormats) {
  Tracer t(Capture());
  SimTime now = 0;
  t.set_clock([&now] { return now; });
  now = 42;
  t.Record(TraceEventKind::kSend, 1, Gpid::Make(1, 7).value, 0xbeef, 3, 128);
  auto events = t.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[0].ts, 42u);
  EXPECT_EQ(events[0].kind, TraceEventKind::kSend);
  std::string line = FormatTraceEvent(events[0]);
  EXPECT_NE(line.find("send"), std::string::npos);
  EXPECT_NE(line.find("c1"), std::string::npos);
  EXPECT_STREQ(TraceEventKindName(TraceEventKind::kSend), "send");
}

TEST(Trace, KindMaskSuppressesRecording) {
  TraceOptions o = Capture();
  o.kind_mask = TraceKindBit(TraceEventKind::kSend);
  Tracer t(o);
  t.Record(TraceEventKind::kSend, 0, 0, 0, 0, 0);
  t.Record(TraceEventKind::kBusTx, 0, 0, 0, 0, 0);  // masked out
  EXPECT_EQ(t.total_recorded(), 1u);
  EXPECT_FALSE(t.WantsKind(TraceEventKind::kBusTx));
  // The default mask drops only the engine-dispatch firehose.
  Tracer d(Capture());
  EXPECT_TRUE(d.WantsKind(TraceEventKind::kBusTx));
  Tracer def{TraceOptions{}};
  EXPECT_FALSE(def.WantsKind(TraceEventKind::kEngineDispatch));
}

TEST(Trace, RingKeepsTailButDigestCoversWholeRun) {
  TraceOptions ring = Capture();
  ring.unbounded = false;
  ring.ring_capacity = 8;
  Tracer rt(ring);
  Tracer full(Capture());
  for (uint64_t i = 0; i < 100; ++i) {
    rt.Record(TraceEventKind::kSend, 0, i, 0, i, 0);
    full.Record(TraceEventKind::kSend, 0, i, 0, i, 0);
  }
  EXPECT_EQ(rt.total_recorded(), 100u);
  auto tail = rt.Events();
  ASSERT_EQ(tail.size(), 8u);
  EXPECT_EQ(tail.front().seq, 92u);  // oldest surviving
  EXPECT_EQ(tail.back().seq, 99u);
  // The digest saw every event, identical to the unbounded tracer's.
  EXPECT_EQ(rt.digest(), full.digest());
  EXPECT_EQ(full.Events().size(), 100u);
}

TEST(Trace, DigestIsOrderAndFieldSensitive) {
  Tracer a(Capture());
  Tracer b(Capture());
  a.Record(TraceEventKind::kSend, 0, 1, 0, 0, 0);
  a.Record(TraceEventKind::kExit, 0, 2, 0, 0, 0);
  b.Record(TraceEventKind::kExit, 0, 2, 0, 0, 0);
  b.Record(TraceEventKind::kSend, 0, 1, 0, 0, 0);
  EXPECT_NE(a.digest(), b.digest());

  Tracer c(Capture());
  c.Record(TraceEventKind::kSend, 0, 1, 0, 0, 1);  // one field differs
  EXPECT_NE(a.digest().hash, c.digest().hash);
}

TEST(Trace, FileRoundTrip) {
  Tracer t(Capture());
  SimTime now = 0;
  t.set_clock([&now] { return now; });
  for (uint64_t i = 0; i < 20; ++i) {
    now = i * 10;
    t.Record(TraceEventKind::kBusTx, static_cast<ClusterId>(i % 3), i, i * 7, i, i + 1);
  }
  const std::string path = ::testing::TempDir() + "/trace_roundtrip.atrc";
  ASSERT_TRUE(t.SaveTo(path));

  std::vector<TraceEvent> loaded;
  TraceDigest digest;
  ASSERT_TRUE(LoadTrace(path, &loaded, &digest));
  EXPECT_EQ(digest, t.digest());
  ASSERT_EQ(loaded.size(), 20u);
  auto original = t.Events();
  for (size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded[i], original[i]);
  }
  EXPECT_FALSE(LoadTrace(path + ".missing", &loaded, &digest));
}

TEST(Trace, ChromeExportPairsBusFrames) {
  Tracer t(Capture());
  SimTime now = 0;
  t.set_clock([&now] { return now; });
  now = 100;
  t.Record(TraceEventKind::kBusTx, 0, 0, 0, /*frame=*/7, 64);
  now = 130;
  t.Record(TraceEventKind::kBusRx, 2, 0, 0, /*frame=*/7, 30);
  now = 140;
  t.Record(TraceEventKind::kSend, 1, Gpid::Make(1, 16).value, 0xaa, 0, 4);
  std::string json = ExportChromeTrace(t.Events());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // The tx/rx pair becomes one complete slice with the transit as duration.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":30"), std::string::npos);
  // The send is an instant event.
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  // Braces/brackets balance (cheap well-formedness check).
  int depth = 0;
  for (char ch : json) {
    if (ch == '{' || ch == '[') depth++;
    if (ch == '}' || ch == ']') depth--;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(Trace, AnalyzeComputesLatencies) {
  Tracer t(Capture());
  SimTime now = 0;
  t.set_clock([&now] { return now; });
  // Two frames with 25us and 75us transit.
  now = 0;
  t.Record(TraceEventKind::kBusTx, 0, 0, 0, 1, 64);
  now = 25;
  t.Record(TraceEventKind::kBusRx, 1, 0, 0, 1, 25);
  now = 30;
  t.Record(TraceEventKind::kBusTx, 0, 0, 0, 2, 64);
  now = 105;
  t.Record(TraceEventKind::kBusRx, 1, 0, 0, 2, 75);
  // A sync with an 11us stall and a crash handled in 500us.
  t.Record(TraceEventKind::kSyncTrigger, 0, 5, 0, 1, 11);
  now = 1000;
  t.Record(TraceEventKind::kCrashDetect, 0, 0, 0, /*dead=*/2, 0);
  now = 1200;
  t.Record(TraceEventKind::kRecoveryDispatch, 0, 9, 0, 0, 0);
  now = 1500;
  t.Record(TraceEventKind::kCrashHandled, 0, 0, 0, /*dead=*/2, 500);
  TraceAnalysis analysis = AnalyzeTrace(t.Events());
  EXPECT_EQ(analysis.delivery_latency.count(), 2u);
  EXPECT_EQ(analysis.delivery_latency.min_us(), 25u);
  EXPECT_EQ(analysis.delivery_latency.max_us(), 75u);
  EXPECT_EQ(analysis.sync_stall.count(), 1u);
  EXPECT_EQ(analysis.crash_to_dispatch.count(), 1u);
  EXPECT_EQ(analysis.crash_to_dispatch.min_us(), 200u);
  EXPECT_EQ(analysis.crash_to_recovered.count(), 1u);
  EXPECT_EQ(analysis.crash_to_recovered.min_us(), 500u);
  EXPECT_FALSE(analysis.ToString().empty());
}

TEST(Trace, HistogramBucketsAndStats) {
  LatencyHistogram h;
  h.Add(1);
  h.Add(2);
  h.Add(1000);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min_us(), 1u);
  EXPECT_EQ(h.max_us(), 1000u);
  EXPECT_EQ(h.total_us(), 1003u);
  EXPECT_DOUBLE_EQ(h.mean_us(), 1003.0 / 3.0);
  std::string s = h.ToString();
  EXPECT_NE(s.find("count=3"), std::string::npos);
  // 1000us lands in the [512,1024) bucket.
  EXPECT_NE(s.find("[512,1024):1"), std::string::npos);
}

// --- delivery-latency metric semantics ---
//
// delivery_latency_samples/_us_total feed the E1 latency analysis; these
// tests pin down what a "sample" is: one per non-heartbeat frame arrival at
// an alive endpoint, measured bus-accept to arrival.

MachineOptions LatencyOptions() {
  MachineOptions options;
  options.config.num_clusters = 2;
  return options;
}

Executable CrossClusterHello() {
  return MustAssemble(R"(
start:
    li r1, 2          ; tty fd
    li r2, msg
    li r3, 13
    sys write
    exit 0
.data
msg: .ascii "hello, world\n"
)");
}

void RunHello(Machine& machine) {
  Machine::UserSpawnOptions opts;
  opts.with_tty = true;
  opts.backup_cluster = 0;
  // Spawned away from the tty/file servers (cluster 0) so every syscall
  // round-trip crosses the bus.
  machine.SpawnUserProgram(1, CrossClusterHello(), opts);
  ASSERT_TRUE(machine.RunUntilAllExited(5'000'000)) << "program did not exit";
  machine.Settle();
}

TEST(DeliveryLatency, HeartbeatsAreNotSampled) {
  Machine machine(LatencyOptions());
  machine.Boot();
  machine.Settle();
  uint64_t samples0 = machine.metrics().delivery_latency_samples;
  uint64_t frames0 = machine.bus().stats().frames_sent;
  // Idle machine: the only bus traffic is heartbeat polling (§7.10), which
  // the bus interface handles without entering the delivery path.
  machine.Run(2'000'000);
  EXPECT_GT(machine.bus().stats().frames_sent, frames0);
  EXPECT_EQ(machine.metrics().delivery_latency_samples, samples0);
}

TEST(DeliveryLatency, FailoverFramesSampledOnceWithTimeoutIncluded) {
  Machine normal(LatencyOptions());
  normal.Boot();
  uint64_t normal_base = normal.metrics().delivery_latency_samples;
  RunHello(normal);
  uint64_t normal_samples = normal.metrics().delivery_latency_samples - normal_base;
  EXPECT_GT(normal_samples, 0u);

  Machine failed(LatencyOptions());
  failed.Boot();
  failed.bus().FailLine(0);
  uint64_t failed_base = failed.metrics().delivery_latency_samples;
  RunHello(failed);
  uint64_t failed_samples = failed.metrics().delivery_latency_samples - failed_base;

  // A failed-over frame is still one frame: exactly as many samples as the
  // healthy run, never a second count for the retry on line 1.
  EXPECT_EQ(failed_samples, normal_samples);
  // But its latency carries the dead-line timeout, so the mean must rise.
  double normal_mean = static_cast<double>(normal.metrics().delivery_latency_us_total) /
                       static_cast<double>(normal.metrics().delivery_latency_samples);
  double failed_mean = static_cast<double>(failed.metrics().delivery_latency_us_total) /
                       static_cast<double>(failed.metrics().delivery_latency_samples);
  EXPECT_GT(failed_mean, normal_mean);
}

TEST(DeliveryLatency, InterleaveViolationSamplesMatchNormalPath) {
  Machine normal(LatencyOptions());
  normal.Boot();
  uint64_t normal_base = normal.metrics().delivery_latency_samples;
  RunHello(normal);
  uint64_t normal_samples = normal.metrics().delivery_latency_samples - normal_base;

  Machine skewed(LatencyOptions());
  skewed.Boot();
  skewed.bus().InjectAtomicityViolation(AtomicityViolation::kInterleave, 1.0, 13);
  uint64_t skewed_base = skewed.metrics().delivery_latency_samples;
  RunHello(skewed);
  uint64_t skewed_samples = skewed.metrics().delivery_latency_samples - skewed_base;

  // The interleave fault skews per-destination timing but delivers every
  // copy, so the sample count must agree with the normal path.
  EXPECT_EQ(skewed_samples, normal_samples);
}

}  // namespace
}  // namespace auragen
