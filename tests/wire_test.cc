// Codec round-trip tests for every wire structure. These matter beyond
// serialization hygiene: the simulation's honesty rests on backups using
// only information that actually crossed the bus as bytes.

#include <gtest/gtest.h>

#include "src/core/wire.h"

namespace auragen {
namespace {

TEST(Wire, MsgHeaderRoundTrip) {
  MsgHeader h;
  h.kind = MsgKind::kSync;
  h.src_pid = Gpid::Make(3, 77);
  h.dst_pid = Gpid::Make(1, 5);
  h.channel = ChannelId{0xabcdef};
  h.dst_primary_cluster = 2;
  h.dst_backup_cluster = kNoCluster;
  h.src_backup_cluster = 7;
  ByteWriter w;
  h.Serialize(w);
  ByteReader r(w.bytes());
  MsgHeader back = MsgHeader::Deserialize(r);
  EXPECT_EQ(back.kind, h.kind);
  EXPECT_EQ(back.src_pid, h.src_pid);
  EXPECT_EQ(back.dst_pid, h.dst_pid);
  EXPECT_EQ(back.channel, h.channel);
  EXPECT_EQ(back.dst_primary_cluster, 2u);
  EXPECT_EQ(back.dst_backup_cluster, kNoCluster);
  EXPECT_EQ(back.src_backup_cluster, 7u);
}

TEST(Wire, MsgEncodeDecode) {
  Msg msg;
  msg.header.kind = MsgKind::kUser;
  msg.header.src_pid = Gpid::Make(0, 9);
  msg.body = Bytes{1, 2, 3, 4, 5};
  Msg back = Msg::Decode(msg.Encode());
  EXPECT_EQ(back.header.kind, MsgKind::kUser);
  EXPECT_EQ(back.header.src_pid, msg.header.src_pid);
  EXPECT_EQ(back.body, msg.body);
}

TEST(Wire, SyncRecordRoundTrip) {
  SyncRecord s;
  s.pid = Gpid::Make(2, 13);
  s.sync_seq = 42;
  s.first_sync = true;
  s.context = Bytes{9, 8, 7};
  s.sig_handler = 0x120;
  s.exec_us = 555;
  s.backup_cluster = 1;
  s.primary_cluster = 2;
  s.mode = static_cast<uint8_t>(BackupMode::kFullback);
  s.parent = Gpid::Make(2, 12);
  s.family_head = Gpid::Make(2, 10);
  SyncChannelRecord c1;
  c1.channel = ChannelId{100};
  c1.fd = 3;
  c1.opened_since_sync = true;
  c1.reads_since_sync = 7;
  SyncChannelRecord c2;
  c2.channel = ChannelId{200};
  c2.fd = kBadFd;
  c2.closed_since_sync = true;
  s.channels = {c1, c2};

  SyncRecord back = SyncRecord::Decode(s.Encode());
  EXPECT_EQ(back.pid, s.pid);
  EXPECT_EQ(back.sync_seq, 42u);
  EXPECT_TRUE(back.first_sync);
  EXPECT_EQ(back.context, s.context);
  EXPECT_EQ(back.sig_handler, 0x120u);
  EXPECT_EQ(back.backup_cluster, 1u);
  EXPECT_EQ(back.mode, s.mode);
  EXPECT_EQ(back.parent, s.parent);
  ASSERT_EQ(back.channels.size(), 2u);
  EXPECT_EQ(back.channels[0].channel, c1.channel);
  EXPECT_EQ(back.channels[0].reads_since_sync, 7u);
  EXPECT_TRUE(back.channels[0].opened_since_sync);
  EXPECT_TRUE(back.channels[1].closed_since_sync);
}

TEST(Wire, KernelContextRoundTrip) {
  KernelContext k;
  k.body_context = Bytes{1, 1, 2, 3, 5};
  k.next_fd = 9;
  k.next_group = 4;
  k.groups = {{1, {0, 2, 5}}, {3, {}}};
  k.fork_seq = 6;
  k.in_signal = true;
  KernelContext back = KernelContext::Decode(k.Encode());
  EXPECT_EQ(back.body_context, k.body_context);
  EXPECT_EQ(back.next_fd, 9);
  EXPECT_EQ(back.next_group, 4u);
  ASSERT_EQ(back.groups.size(), 2u);
  EXPECT_EQ(back.groups[0].second, (std::vector<int32_t>{0, 2, 5}));
  EXPECT_TRUE(back.groups[1].second.empty());
  EXPECT_EQ(back.fork_seq, 6u);
  EXPECT_TRUE(back.in_signal);
}

TEST(Wire, BirthNoticeRoundTrip) {
  BirthNotice b;
  b.parent = Gpid::Make(1, 2);
  b.child = Gpid::Make(1, 3);
  b.fork_seq = 2;
  b.mode = static_cast<uint8_t>(BackupMode::kQuarterback);
  b.family_head = Gpid::Make(1, 1);
  b.chan_creates = {Bytes{1, 2}, Bytes{3}};
  BirthNotice back = BirthNotice::Decode(b.Encode());
  EXPECT_EQ(back.parent, b.parent);
  EXPECT_EQ(back.child, b.child);
  EXPECT_EQ(back.fork_seq, 2u);
  EXPECT_EQ(back.family_head, b.family_head);
  ASSERT_EQ(back.chan_creates.size(), 2u);
  EXPECT_EQ(back.chan_creates[1], Bytes{3});
}

TEST(Wire, ChanCreateRoundTrip) {
  ChanCreate c;
  c.channel = ChannelId{0x42};
  c.owner = Gpid::Make(0, 20);
  c.backup_entry = true;
  c.fd = 2;
  c.peer_pid = Gpid::Make(1, 30);
  c.peer_primary_cluster = 1;
  c.peer_backup_cluster = 0;
  c.own_backup_cluster = 3;
  c.peer_kind = 2;
  c.peer_mode = 1;
  c.binding_tag = 0x1004;
  ChanCreate back = ChanCreate::Decode(c.Encode());
  EXPECT_EQ(back.channel, c.channel);
  EXPECT_TRUE(back.backup_entry);
  EXPECT_EQ(back.fd, 2);
  EXPECT_EQ(back.peer_kind, 2);
  EXPECT_EQ(back.peer_mode, 1);
  EXPECT_EQ(back.binding_tag, 0x1004u);
}

TEST(Wire, OpenReplyRoundTrip) {
  OpenReplyBody o;
  o.request_cookie = 9;
  o.status = -2;
  o.channel = ChannelId{77};
  o.peer_pid = Gpid::Make(2, 2);
  o.peer_primary_cluster = 2;
  o.peer_backup_cluster = kNoCluster;
  o.peer_kind = 1;
  o.peer_mode = 2;
  OpenReplyBody back = OpenReplyBody::Decode(o.Encode());
  EXPECT_EQ(back.request_cookie, 9u);
  EXPECT_EQ(back.status, -2);
  EXPECT_EQ(back.channel, o.channel);
  EXPECT_EQ(back.peer_backup_cluster, kNoCluster);
}

TEST(Wire, PageBodiesRoundTrip) {
  PageWriteBody w;
  w.pid = Gpid::Make(1, 1);
  w.page = 12;
  w.content = Bytes(256, 0xCC);
  PageWriteBody wb = PageWriteBody::Decode(w.Encode());
  EXPECT_EQ(wb.page, 12u);
  EXPECT_EQ(wb.content, w.content);

  PageRequestBody q;
  q.pid = Gpid::Make(1, 1);
  q.page = 12;
  q.reply_to = 3;
  q.cookie = 99;
  PageRequestBody qb = PageRequestBody::Decode(q.Encode());
  EXPECT_EQ(qb.reply_to, 3u);
  EXPECT_EQ(qb.cookie, 99u);

  PageReplyBody p;
  p.pid = q.pid;
  p.page = 12;
  p.cookie = 99;
  p.known = true;
  p.content = Bytes{5};
  PageReplyBody pb = PageReplyBody::Decode(p.Encode());
  EXPECT_TRUE(pb.known);
  EXPECT_EQ(pb.content, Bytes{5});
}

TEST(Wire, BackupCreateRoundTrip) {
  BackupCreateBody b;
  b.pid = Gpid::Make(0, 50);
  b.mode = BackupMode::kHalfback;
  b.parent = Gpid::Make(0, 49);
  b.family_head = Gpid::Make(0, 48);
  b.primary_cluster = 1;
  b.has_sync = true;
  b.is_server = true;
  b.peripheral = true;
  b.sync_seq = 8;
  b.context = Bytes{1, 2};
  b.sig_handler = 0;
  b.exe = Bytes{};
  b.fds = {{0, 100}, {2, 200}};
  SavedQueueRecord q;
  q.channel = ChannelId{100};
  q.fd = 0;
  q.peer_pid = Gpid::Make(1, 1);
  q.peer_kind = 1;
  q.writes_since_sync = 3;
  q.queued = {Bytes{9}, Bytes{8, 7}};
  b.queues = {q};

  BackupCreateBody back = BackupCreateBody::Decode(b.Encode());
  EXPECT_EQ(back.pid, b.pid);
  EXPECT_EQ(back.mode, BackupMode::kHalfback);
  EXPECT_TRUE(back.has_sync);
  EXPECT_TRUE(back.is_server);
  EXPECT_TRUE(back.peripheral);
  ASSERT_EQ(back.fds.size(), 2u);
  EXPECT_EQ(back.fds[1].second, 200u);
  ASSERT_EQ(back.queues.size(), 1u);
  EXPECT_EQ(back.queues[0].writes_since_sync, 3u);
  ASSERT_EQ(back.queues[0].queued.size(), 2u);
  EXPECT_EQ(back.queues[0].queued[1], (Bytes{8, 7}));
}

TEST(Wire, KindNamesCoverEveryKind) {
  for (MsgKind kind : {MsgKind::kUser, MsgKind::kOpenReply, MsgKind::kSignal, MsgKind::kClose,
                       MsgKind::kSync, MsgKind::kBirthNotice, MsgKind::kExitNotice,
                       MsgKind::kCrashNotice, MsgKind::kHeartbeat, MsgKind::kBackupCreate,
                       MsgKind::kBackupReady, MsgKind::kChanCreate, MsgKind::kPageWrite,
                       MsgKind::kPageRequest, MsgKind::kPageReply, MsgKind::kServerSync,
                       MsgKind::kCheckpoint, MsgKind::kProcCrash}) {
    EXPECT_STRNE(MsgKindName(kind), "?");
  }
}

}  // namespace
}  // namespace auragen
