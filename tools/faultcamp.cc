// faultcamp: deterministic fault-injection campaign runner. Executes N
// seeded crash/kill/restore scenarios against seeded workloads and checks
// the recovery invariants after each (see src/fault/campaign.h). Any
// failing seed is a complete reproduction recipe: `faultcamp --seed X`
// reruns exactly that scenario.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/base/log.h"
#include "src/fault/campaign.h"

namespace {

void Usage() {
  std::fprintf(stderr,
               "usage: faultcamp [--seeds N] [--start S] [--seed X] [--plan]\n"
               "                 [--workload W] [--clusters C] [--segments S]\n"
               "                 [--switch-latency-us L] [--sync-mode M]\n"
               "                 [--adaptive-sync] [--page-shards P]\n"
               "                 [--engine-threads T] [--machine-threads T]\n"
               "                 [--cross-check] [--no-determinism] [--verbose]\n"
               "\n"
               "  --seeds N          run seeds [start, start+N) (default 200)\n"
               "  --workload W       pairs | kv | file (default pairs); kv runs\n"
               "                     the serving workload under seeded cluster\n"
               "                     crashes and checks no acked write is lost;\n"
               "                     file runs append churners against the\n"
               "                     journaled file server under crash-mid-commit\n"
               "                     and crash-during-replay plans\n"
               "  --start S          first seed (default 1)\n"
               "  --seed X           run exactly one seed, verbosely\n"
               "  --plan             with --seed: print the fault plan and exit\n"
               "  --clusters C       clusters per machine (default 4)\n"
               "  --segments S       fabric segments (default 1 = single bus);\n"
               "                     C must divide into S equal segments; >1 arms\n"
               "                     the segment-partition scenario\n"
               "  --switch-latency-us L  store-and-forward switch hop (default 4)\n"
               "  --sync-mode M      stop-and-copy | incremental | incremental-async\n"
               "                     (default incremental)\n"
               "  --adaptive-sync    adapt the time-based sync trigger to dirty rate\n"
               "  --page-shards P    page-server shards (default 1)\n"
               "  --engine-threads T seeds simulated concurrently (default 1);\n"
               "                     results and digests are identical to T=1\n"
               "  --machine-threads T shard-worker threads inside each machine\n"
               "                     run (ShardPlan layout); digests identical\n"
               "                     to T=1\n"
               "  --cross-check      run the campaign fully sequentially (both\n"
               "                     thread knobs forced to 1) AND at the\n"
               "                     requested thread counts, and require every\n"
               "                     seed's outcome + trace digest to match\n"
               "  --no-determinism   skip the replay/trace-digest check (3x -> 2x runs)\n"
               "  --verbose          print every scenario, not just failures\n");
}

}  // namespace

int main(int argc, char** argv) {
  using auragen::CampaignOptions;
  using auragen::ScenarioResult;

  if (std::getenv("AURAGEN_LOG_INFO") != nullptr) {
    auragen::Logger::Get().set_level(auragen::LogLevel::kInfo);
  }

  uint64_t seeds = 200;
  uint64_t start = 1;
  bool single = false;
  uint64_t single_seed = 0;
  bool plan_only = false;
  bool verbose = false;
  bool cross_check = false;
  CampaignOptions opt;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seeds") {
      seeds = std::strtoull(next(), nullptr, 0);
    } else if (arg == "--start") {
      start = std::strtoull(next(), nullptr, 0);
    } else if (arg == "--seed") {
      single = true;
      single_seed = std::strtoull(next(), nullptr, 0);
    } else if (arg == "--plan") {
      plan_only = true;
    } else if (arg == "--workload") {
      std::string w = next();
      if (w == "pairs") {
        opt.kv_workload = false;
        opt.file_workload = false;
      } else if (w == "kv") {
        opt.kv_workload = true;
        opt.file_workload = false;
      } else if (w == "file") {
        opt.kv_workload = false;
        opt.file_workload = true;
      } else {
        std::fprintf(stderr, "faultcamp: unknown workload '%s'\n", w.c_str());
        Usage();
        return 2;
      }
    } else if (arg == "--clusters") {
      opt.num_clusters = static_cast<uint32_t>(std::strtoul(next(), nullptr, 0));
    } else if (arg == "--segments") {
      opt.num_segments = static_cast<uint32_t>(std::strtoul(next(), nullptr, 0));
    } else if (arg == "--switch-latency-us") {
      opt.switch_latency_us = std::strtoull(next(), nullptr, 0);
    } else if (arg == "--sync-mode") {
      std::string mode = next();
      if (mode == "stop-and-copy") {
        opt.sync_policy.mode = auragen::SyncMode::kStopAndCopy;
      } else if (mode == "incremental") {
        opt.sync_policy.mode = auragen::SyncMode::kIncremental;
      } else if (mode == "incremental-async") {
        opt.sync_policy.mode = auragen::SyncMode::kIncrementalAsync;
      } else {
        std::fprintf(stderr, "faultcamp: unknown sync mode '%s'\n", mode.c_str());
        Usage();
        return 2;
      }
    } else if (arg == "--adaptive-sync") {
      opt.sync_policy.adaptive = true;
    } else if (arg == "--page-shards") {
      opt.page_shards = static_cast<uint32_t>(std::strtoul(next(), nullptr, 0));
    } else if (arg == "--engine-threads") {
      opt.engine_threads = static_cast<uint32_t>(std::strtoul(next(), nullptr, 0));
    } else if (arg == "--machine-threads") {
      opt.machine_threads = static_cast<uint32_t>(std::strtoul(next(), nullptr, 0));
    } else if (arg == "--cross-check") {
      cross_check = true;
    } else if (arg == "--no-determinism") {
      opt.check_determinism = false;
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else {
      std::fprintf(stderr, "faultcamp: unknown argument '%s'\n", arg.c_str());
      Usage();
      return 2;
    }
  }

  if (opt.num_segments < 1 ||
      (opt.num_segments > 1 && opt.num_clusters % opt.num_segments != 0)) {
    std::fprintf(stderr, "faultcamp: --clusters %u does not divide into --segments %u\n",
                 opt.num_clusters, opt.num_segments);
    return 2;
  }

  if (single) {
    if (plan_only) {
      if (opt.kv_workload || opt.file_workload) {
        std::fprintf(stderr, "faultcamp: --plan applies to the pairs workload only\n");
        return 2;
      }
      std::printf("seed %llu: %s\n", static_cast<unsigned long long>(single_seed),
                  auragen::MakeScenarioPlan(single_seed, opt).Describe().c_str());
      return 0;
    }
    ScenarioResult r = opt.file_workload ? auragen::RunFileScenario(single_seed, opt)
                       : opt.kv_workload ? auragen::RunKvScenario(single_seed, opt)
                                         : auragen::RunScenario(single_seed, opt);
    std::printf("seed %llu: %s  [%s]\n", static_cast<unsigned long long>(r.seed),
                r.ok ? "PASS" : "FAIL", r.scenario.c_str());
    std::printf("  takeovers=%llu crashes_handled=%llu tty_dups=%llu\n",
                static_cast<unsigned long long>(r.takeovers),
                static_cast<unsigned long long>(r.crashes_handled),
                static_cast<unsigned long long>(r.tty_duplicates));
    if (!r.ok) {
      std::printf("  failure: %s\n", r.failure.c_str());
    }
    return r.ok ? 0 : 1;
  }

  auto report = [&](const ScenarioResult& r) {
    if (!r.ok) {
      std::printf("seed %llu: FAIL  [%s]\n  %s\n",
                  static_cast<unsigned long long>(r.seed), r.scenario.c_str(),
                  r.failure.c_str());
    } else if (verbose) {
      std::printf("seed %llu: PASS  [%s] takeovers=%llu\n",
                  static_cast<unsigned long long>(r.seed), r.scenario.c_str(),
                  static_cast<unsigned long long>(r.takeovers));
    }
  };

  if (cross_check) {
    // Mode-equivalence oracle: the same seed range fully sequentially (one
    // seed at a time, one shard worker per machine) and at the requested
    // thread counts must produce the same per-seed outcomes and trace
    // digests, bit for bit.
    std::vector<ScenarioResult> seq, par;
    CampaignOptions seq_opt = opt;
    seq_opt.engine_threads = 1;
    seq_opt.machine_threads = 1;
    auto seq_summary = auragen::RunCampaign(
        start, seeds, seq_opt, [&](const ScenarioResult& r) { seq.push_back(r); });
    auto par_summary = auragen::RunCampaign(
        start, seeds, opt, [&](const ScenarioResult& r) { par.push_back(r); });
    uint64_t mismatches = 0;
    for (uint64_t i = 0; i < seeds; ++i) {
      report(par[i]);
      if (seq[i].ok != par[i].ok || seq[i].trace_digest != par[i].trace_digest) {
        ++mismatches;
        std::printf("seed %llu: MODE MISMATCH  seq{ok=%d digest=%s} par{ok=%d digest=%s}\n",
                    static_cast<unsigned long long>(seq[i].seed), seq[i].ok ? 1 : 0,
                    seq[i].trace_digest.ToString().c_str(), par[i].ok ? 1 : 0,
                    par[i].trace_digest.ToString().c_str());
      }
    }
    std::printf("faultcamp: %llu scenarios x2 modes (seed-threads 1 vs %u, "
                "machine-threads 1 vs %u), %llu failed, %llu cross-mode mismatches\n",
                static_cast<unsigned long long>(par_summary.run), opt.engine_threads,
                opt.machine_threads,
                static_cast<unsigned long long>(par_summary.failed),
                static_cast<unsigned long long>(mismatches));
    return (seq_summary.failed == 0 && par_summary.failed == 0 && mismatches == 0) ? 0 : 1;
  }

  auto summary = auragen::RunCampaign(start, seeds, opt, report);

  std::printf("faultcamp: %llu scenarios, %llu failed\n",
              static_cast<unsigned long long>(summary.run),
              static_cast<unsigned long long>(summary.failed));
  for (const auto& [kind, count] : summary.by_scenario) {
    std::printf("  %-26s %llu\n", kind.c_str(), static_cast<unsigned long long>(count));
  }
  return summary.failed == 0 ? 0 : 1;
}
