// kvload: closed-loop serving-load driver for the KV guest service
// (src/workload). Boots a machine, deploys the partitioned KV service plus
// N client sessions, optionally injects a mid-run cluster crash, and prints
// the SLO report (p50/p99/p999, goodput) built from kRequestMark trace
// events. Exit status 0 iff every session completed with zero verification
// failures — i.e. no acknowledged write was lost.
//
//   kvload --sessions 1000 --partitions 8 --clusters 8
//   kvload --sync-mode incremental-async
//   kvload --crash-at 40000 --crash-cluster 2
//   kvload --strategy none --replicas 2 --crash-at 40000 --crash-cluster 2

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/machine/machine.h"
#include "src/trace/trace.h"
#include "src/workload/kv_service.h"
#include "src/workload/slo.h"

namespace {

void Usage() {
  std::fprintf(
      stderr,
      "usage: kvload [options]\n"
      "  --sessions N        client sessions (default 1000)\n"
      "  --partitions P      KV partitions (default 8)\n"
      "  --requests R        requests per session (default 16)\n"
      "  --clusters C        clusters (default 8)\n"
      "  --segments S        fabric segments (default 1 = single bus); C must\n"
      "                      divide into S equal segments\n"
      "  --switch-latency-us L  store-and-forward switch hop (default 4)\n"
      "  --engine-threads T  shard-worker threads (ShardPlan layout); the\n"
      "                      trace digest is identical at any T (default 1)\n"
      "  --replicas 1|2      1: message-system FT; 2: app-level P/B (default 1)\n"
      "  --strategy S        msgsys | none (default msgsys)\n"
      "  --sync-mode M       stop-and-copy | incremental | incremental-async\n"
      "  --adaptive-sync     adaptive sync trigger\n"
      "  --sync-reads N      reads-since-sync trigger (0 = machine default)\n"
      "  --read-fraction F   read share of shared ops (default 0.7)\n"
      "  --zipf T            shared-key zipf theta, 0 = uniform (default 0.99)\n"
      "  --think N           think-time spin iterations (default 64)\n"
      "  --seed S            workload + machine seed (default 1)\n"
      "  --crash-at US       crash --crash-cluster at +US us (0 = never)\n"
      "  --crash-cluster C   victim cluster (default 2)\n"
      "  --primary-base N    first primary-server cluster (default 0)\n"
      "  --backup-base N     first app-replica cluster (default 1)\n"
      "  --no-spread         pin all primaries (replicas) to their base cluster\n"
      "  --client-clusters L comma-separated client clusters (default: all)\n"
      "  --run-cap-us US     simulated-time cap (default 2000000000)\n"
      "  --trace FILE        save the (mark-masked) trace\n"
      "  --stats             also print tracedump-style histograms\n"
      "  --digest            print the trace digest (determinism check)\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace auragen;
  using namespace auragen::workload;

  KvOptions kv;
  uint32_t clusters = 8;
  uint32_t segments = 1;
  SimTime switch_latency_us = 4;
  uint32_t engine_threads = 1;
  FtStrategy strategy = FtStrategy::kMessageSystem;
  SyncPolicy sync_policy;
  SimTime crash_at = 0;
  uint32_t crash_cluster = 2;
  SimTime run_cap_us = 2'000'000'000;
  uint32_t sync_reads_limit = 0;  // 0 = machine default
  std::string trace_path;
  bool stats = false;
  bool digest = false;
  bool verbose = false;
  bool full_trace = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--sessions") {
      kv.sessions = static_cast<uint32_t>(std::strtoul(next(), nullptr, 0));
    } else if (arg == "--partitions") {
      kv.partitions = static_cast<uint32_t>(std::strtoul(next(), nullptr, 0));
    } else if (arg == "--requests") {
      kv.requests_per_session = static_cast<uint32_t>(std::strtoul(next(), nullptr, 0));
    } else if (arg == "--clusters") {
      clusters = static_cast<uint32_t>(std::strtoul(next(), nullptr, 0));
    } else if (arg == "--segments") {
      segments = static_cast<uint32_t>(std::strtoul(next(), nullptr, 0));
    } else if (arg == "--switch-latency-us") {
      switch_latency_us = std::strtoull(next(), nullptr, 0);
    } else if (arg == "--engine-threads") {
      engine_threads = static_cast<uint32_t>(std::strtoul(next(), nullptr, 0));
    } else if (arg == "--replicas") {
      kv.replicas = static_cast<uint32_t>(std::strtoul(next(), nullptr, 0));
    } else if (arg == "--strategy") {
      std::string s = next();
      if (s == "msgsys") {
        strategy = FtStrategy::kMessageSystem;
      } else if (s == "none") {
        strategy = FtStrategy::kNone;
      } else {
        std::fprintf(stderr, "kvload: unknown strategy '%s'\n", s.c_str());
        return 2;
      }
    } else if (arg == "--sync-mode") {
      std::string mode = next();
      if (mode == "stop-and-copy") {
        sync_policy.mode = SyncMode::kStopAndCopy;
      } else if (mode == "incremental") {
        sync_policy.mode = SyncMode::kIncremental;
      } else if (mode == "incremental-async") {
        sync_policy.mode = SyncMode::kIncrementalAsync;
      } else {
        std::fprintf(stderr, "kvload: unknown sync mode '%s'\n", mode.c_str());
        return 2;
      }
    } else if (arg == "--adaptive-sync") {
      sync_policy.adaptive = true;
    } else if (arg == "--sync-reads") {
      sync_reads_limit = static_cast<uint32_t>(std::strtoul(next(), nullptr, 0));
    } else if (arg == "--read-fraction") {
      kv.read_fraction = std::strtod(next(), nullptr);
    } else if (arg == "--zipf") {
      kv.zipf_theta = std::strtod(next(), nullptr);
    } else if (arg == "--think") {
      kv.think_spin = static_cast<uint32_t>(std::strtoul(next(), nullptr, 0));
    } else if (arg == "--seed") {
      kv.seed = std::strtoull(next(), nullptr, 0);
    } else if (arg == "--primary-base") {
      kv.primary_base = static_cast<uint32_t>(std::strtoul(next(), nullptr, 0));
    } else if (arg == "--backup-base") {
      kv.backup_base = static_cast<uint32_t>(std::strtoul(next(), nullptr, 0));
    } else if (arg == "--no-spread") {
      kv.spread_servers = false;
    } else if (arg == "--client-clusters") {
      const char* list = next();
      kv.client_clusters.clear();
      for (const char* p = list; *p != '\0';) {
        char* end = nullptr;
        kv.client_clusters.push_back(
            static_cast<uint32_t>(std::strtoul(p, &end, 0)));
        p = (*end == ',') ? end + 1 : end;
      }
    } else if (arg == "--crash-at") {
      crash_at = std::strtoull(next(), nullptr, 0);
    } else if (arg == "--crash-cluster") {
      crash_cluster = static_cast<uint32_t>(std::strtoul(next(), nullptr, 0));
    } else if (arg == "--run-cap-us") {
      run_cap_us = std::strtoull(next(), nullptr, 0);
    } else if (arg == "--trace") {
      trace_path = next();
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (arg == "--full-trace") {
      full_trace = true;
    } else if (arg == "--digest") {
      digest = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else {
      std::fprintf(stderr, "kvload: unknown argument '%s'\n", arg.c_str());
      Usage();
      return 2;
    }
  }

  MachineOptions options;
  options.config.num_clusters = clusters;
  if (segments > 1) {
    if (clusters % segments != 0) {
      std::fprintf(stderr, "kvload: --clusters %u does not divide into --segments %u\n",
                   clusters, segments);
      return 2;
    }
    options.WithTopology(Topology::Uniform(segments, clusters / segments)
                             .WithSwitchLatency(switch_latency_us));
  }
  options.config.strategy = strategy;
  options.config.sync_policy = sync_policy;
  if (sync_reads_limit != 0) options.config.sync_reads_limit = sync_reads_limit;
  options.seed = kv.seed;
  options.engine_threads = engine_threads;
  options.trace.enabled = true;
  options.trace.unbounded = true;
  // Only the SLO marks and the crash-recovery envelope: full delivery
  // tracing at thousands of sessions costs gigabytes.
  options.trace.kind_mask = TraceKindBit(TraceEventKind::kRequestMark) |
                            TraceKindBit(TraceEventKind::kCrashDetect) |
                            TraceKindBit(TraceEventKind::kCrashHandled) |
                            TraceKindBit(TraceEventKind::kRecoveryDispatch) |
                            TraceKindBit(TraceEventKind::kTakeover);
  if (full_trace) options.trace.kind_mask = ~0ull;
  Machine machine(options);
  machine.Boot();

  KvDeployment d = DeployKv(machine, kv);
  if (crash_at != 0) {
    std::printf("will crash cluster %u at +%llu us\n", crash_cluster,
                static_cast<unsigned long long>(crash_at));
    machine.CrashClusterAt(machine.Now() + crash_at, crash_cluster);
  }

  const bool done = machine.RunUntil(
      [&] { return KvClientsDone(machine, d); }, run_cap_us);
  machine.Settle();

  SloReport report = BuildSloReport(machine.tracer()->Events(), machine, d, done);
  std::printf("kvload: %u sessions x %u requests, %u partitions, %u replicas, "
              "%u clusters/%u segments, strategy=%s, sync=%s%s, seed=%llu\n",
              kv.sessions, kv.requests_per_session, kv.partitions, kv.replicas,
              clusters, segments, FtStrategyName(strategy),
              SyncModeName(sync_policy.mode), sync_policy.adaptive ? "+adaptive" : "",
              static_cast<unsigned long long>(kv.seed));
  std::printf("%s", report.ToString().c_str());
  if (stats) {
    std::printf("%s", AnalyzeTrace(machine.tracer()->Events()).ToString().c_str());
  }
  if (verbose) {
    for (uint32_t s = 0; s < kv.sessions; ++s) {
      const Gpid pid = d.clients[s];
      if (!machine.HasExited(pid)) {
        std::printf("  session %u (partition %u, cluster %u): STUCK\n", s,
                    s % kv.partitions, d.client_clusters[s]);
      } else if (machine.ExitStatus(pid) != 0) {
        std::printf("  session %u (partition %u, cluster %u): status %d\n", s,
                    s % kv.partitions, d.client_clusters[s],
                    machine.ExitStatus(pid));
      }
    }
    for (uint32_t p = 0; p < kv.partitions; ++p) {
      const Gpid pid = d.primaries[p];
      std::printf("  primary %u (cluster %u): %s\n", p,
                  d.primary_clusters[p],
                  machine.HasExited(pid)
                      ? (machine.ExitStatus(pid) == 0 ? "exited 0" : "exited nonzero")
                      : "running");
    }
  }
  if (digest) {
    std::printf("digest: %s\n", machine.tracer()->digest().ToString().c_str());
  }
  if (!trace_path.empty()) {
    if (!machine.tracer()->SaveTo(trace_path)) {
      std::fprintf(stderr, "kvload: cannot write %s\n", trace_path.c_str());
      return 1;
    }
    std::printf("trace saved to %s\n", trace_path.c_str());
  }
  return (report.complete && report.mismatches == 0) ? 0 : 1;
}
