// tracedump: capture and inspect Auragen trace files.
//
//   tracedump --capture FILE [--seed N] [--crash] [--all-kinds] [--ring N]
//       run the built-in crash/recovery ping-pong scenario with tracing on
//       and save the binary trace to FILE
//   tracedump --print FILE [--kind NAME] [--cluster N] [--pid HEX]
//             [--from US] [--to US] [--limit N]
//       print events, one per line, with optional filters
//   tracedump --chrome FILE [--out OUT.json]
//       export to Chrome trace_event JSON (load in chrome://tracing / Perfetto)
//   tracedump --stats FILE
//       per-event-class latency histograms (delivery, sync stall, recovery)
//   tracedump --digest FILE
//       print the run digest
//   tracedump --diff FILE1 FILE2
//       compare two traces; report the first divergent event

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/avm/assembler.h"
#include "src/machine/machine.h"
#include "src/trace/analysis.h"
#include "src/trace/chrome_trace.h"
#include "src/trace/trace.h"

namespace auragen {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: tracedump --capture FILE [--seed N] [--crash] [--all-kinds] "
               "[--ring N]\n"
               "       tracedump --print FILE [--kind NAME] [--cluster N] [--pid HEX]\n"
               "                 [--from US] [--to US] [--limit N]\n"
               "       tracedump --chrome FILE [--out OUT.json]\n"
               "       tracedump --stats FILE\n"
               "       tracedump --digest FILE\n"
               "       tracedump --diff FILE1 FILE2\n");
  return 2;
}

// The capture scenario: two user processes ping-pong over a paired channel
// across clusters with tty output; optionally cluster 2 is crashed mid-run
// so the trace shows detection, takeover, rollforward, and backup re-create.
int Capture(const std::string& path, uint64_t seed, bool crash, bool all_kinds,
            size_t ring) {
  MachineOptions options;
  options.config.num_clusters = 3;
  options.seed = seed;
  options.trace.enabled = true;
  options.trace.unbounded = ring == 0;
  if (ring != 0) {
    options.trace.ring_capacity = ring;
  }
  if (all_kinds) {
    options.trace.kind_mask = ~uint64_t{0};
  }
  Machine machine(options);
  machine.Boot();

  Executable ping = MustAssemble(R"(
start:
    li r1, name
    li r2, 5
    sys open
    mov r10, r0
    li r8, 0
loop:
    li r11, buf
    st r8, r11, 0
    mov r1, r10
    li r2, buf
    li r3, 4
    sys write
    mov r1, r10
    li r2, buf
    li r3, 4
    sys read
    addi r8, r8, 1
    li r12, 30
    blt r8, r12, loop
    exit 0
.data
name: .ascii "ch:td"
buf: .word 0
)");
  Executable pong = MustAssemble(R"(
start:
    li r1, name
    li r2, 5
    sys open
    mov r10, r0
    li r8, 0
loop:
    mov r1, r10
    li r2, buf
    li r3, 4
    sys read
    li r11, buf
    ld r2, r11, 0
    li r3, 26
    mod r2, r2, r3
    li r3, 97
    add r2, r2, r3
    li r11, out
    stb r2, r11, 0
    li r1, 2
    li r2, out
    li r3, 1
    sys write
    mov r1, r10
    li r2, buf
    li r3, 4
    sys write
    addi r8, r8, 1
    li r12, 30
    blt r8, r12, loop
    exit 0
.data
name: .ascii "ch:td"
buf: .word 0
out: .byte 0
)");
  Machine::UserSpawnOptions a;
  a.backup_cluster = 1;
  Machine::UserSpawnOptions b;
  b.backup_cluster = 0;
  b.with_tty = true;
  machine.SpawnUserProgram(0, ping, a);
  machine.SpawnUserProgram(2, pong, b);
  if (crash) {
    machine.CrashClusterAt(machine.Now() + 1'000, 2);
  }
  if (!machine.RunUntilAllExited(300'000'000)) {
    std::fprintf(stderr, "tracedump: scenario did not finish\n");
    return 1;
  }
  machine.Settle();

  if (!machine.tracer()->SaveTo(path)) {
    std::fprintf(stderr, "tracedump: cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("captured %llu events (%zu held) to %s\n",
              static_cast<unsigned long long>(machine.tracer()->total_recorded()),
              machine.tracer()->Events().size(), path.c_str());
  std::printf("digest: %s\n", machine.tracer()->digest().ToString().c_str());
  return 0;
}

bool ParseKindName(const std::string& name, TraceEventKind* out) {
  for (unsigned v = 1; v < static_cast<unsigned>(TraceEventKind::kMaxKind); ++v) {
    TraceEventKind k = static_cast<TraceEventKind>(v);
    if (name == TraceEventKindName(k)) {
      *out = k;
      return true;
    }
  }
  return false;
}

struct Filter {
  bool has_kind = false;
  TraceEventKind kind = TraceEventKind::kSend;
  bool has_cluster = false;
  ClusterId cluster = 0;
  bool has_pid = false;
  uint64_t pid = 0;
  SimTime from = 0;
  SimTime to = UINT64_MAX;
  uint64_t limit = UINT64_MAX;

  bool Match(const TraceEvent& e) const {
    if (has_kind && e.kind != kind) return false;
    if (has_cluster && e.cluster != cluster) return false;
    if (has_pid && e.gpid != pid) return false;
    return e.ts >= from && e.ts <= to;
  }
};

int Print(const std::vector<TraceEvent>& events, const TraceDigest& digest,
          const Filter& filter) {
  uint64_t shown = 0;
  for (const TraceEvent& e : events) {
    if (!filter.Match(e)) {
      continue;
    }
    std::printf("%s\n", FormatTraceEvent(e).c_str());
    if (++shown >= filter.limit) {
      break;
    }
  }
  std::printf("-- %llu of %zu held events shown; run digest %s\n",
              static_cast<unsigned long long>(shown), events.size(),
              digest.ToString().c_str());
  return 0;
}

}  // namespace
}  // namespace auragen

int main(int argc, char** argv) {
  using namespace auragen;
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) {
    return Usage();
  }
  const std::string mode = args[0];
  auto value_of = [&](const std::string& flag) -> const char* {
    for (size_t i = 1; i + 1 < args.size(); ++i) {
      if (args[i] == flag) {
        return args[i + 1].c_str();
      }
    }
    return nullptr;
  };
  auto has_flag = [&](const std::string& flag) {
    for (size_t i = 1; i < args.size(); ++i) {
      if (args[i] == flag) {
        return true;
      }
    }
    return false;
  };
  if (args.size() < 2) {
    return Usage();
  }
  const std::string path = args[1];

  if (mode == "--capture") {
    uint64_t seed = 1;
    size_t ring = 0;
    if (const char* s = value_of("--seed")) seed = std::strtoull(s, nullptr, 0);
    if (const char* s = value_of("--ring")) ring = std::strtoull(s, nullptr, 0);
    return Capture(path, seed, has_flag("--crash"), has_flag("--all-kinds"), ring);
  }

  if (mode == "--diff") {
    if (args.size() < 3) {
      return Usage();
    }
    std::vector<TraceEvent> ea, eb;
    TraceDigest da, db;
    if (!LoadTrace(path, &ea, &da) || !LoadTrace(args[2], &eb, &db)) {
      std::fprintf(stderr, "tracedump: cannot load traces\n");
      return 1;
    }
    if (da == db) {
      std::printf("digests match: %s\n", da.ToString().c_str());
      return 0;
    }
    DivergenceReport report = FindFirstDivergence(ea, eb);
    std::printf("digest A: %s\ndigest B: %s\n%s\n", da.ToString().c_str(),
                db.ToString().c_str(),
                report.diverged ? report.ToString().c_str()
                                : "held events identical (divergence outside ring?)");
    return 1;
  }

  std::vector<TraceEvent> events;
  TraceDigest digest;
  if (!LoadTrace(path, &events, &digest)) {
    std::fprintf(stderr, "tracedump: cannot load %s\n", path.c_str());
    return 1;
  }

  if (mode == "--print") {
    Filter filter;
    if (const char* s = value_of("--kind")) {
      if (!ParseKindName(s, &filter.kind)) {
        std::fprintf(stderr, "tracedump: unknown kind '%s'\n", s);
        return 2;
      }
      filter.has_kind = true;
    }
    if (const char* s = value_of("--cluster")) {
      filter.has_cluster = true;
      filter.cluster = static_cast<ClusterId>(std::strtoul(s, nullptr, 0));
    }
    if (const char* s = value_of("--pid")) {
      filter.has_pid = true;
      filter.pid = std::strtoull(s, nullptr, 16);
    }
    if (const char* s = value_of("--from")) filter.from = std::strtoull(s, nullptr, 0);
    if (const char* s = value_of("--to")) filter.to = std::strtoull(s, nullptr, 0);
    if (const char* s = value_of("--limit")) filter.limit = std::strtoull(s, nullptr, 0);
    return Print(events, digest, filter);
  }

  if (mode == "--chrome") {
    const char* out = value_of("--out");
    const std::string out_path = out != nullptr ? out : path + ".json";
    if (!WriteChromeTrace(out_path, events)) {
      std::fprintf(stderr, "tracedump: cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::printf("wrote %zu events to %s\n", events.size(), out_path.c_str());
    return 0;
  }

  if (mode == "--stats") {
    std::printf("%s", AnalyzeTrace(events).ToString().c_str());
    std::printf("digest: %s\n", digest.ToString().c_str());
    return 0;
  }

  if (mode == "--digest") {
    std::printf("%s\n", digest.ToString().c_str());
    return 0;
  }

  return Usage();
}
